"""Negacyclic NTT: roundtrip, convolution theorem, batching."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nt.ntt import NttPlan, bit_reverse_permutation
from repro.nt.primes import gen_ntt_primes


def naive_negacyclic(a, b, p):
    n = len(a)
    out = [0] * n
    for i in range(n):
        for j in range(n):
            k = i + j
            v = int(a[i]) * int(b[j])
            if k >= n:
                out[k - n] = (out[k - n] - v) % p
            else:
                out[k] = (out[k] + v) % p
    return np.array(out, dtype=np.int64)


def test_bit_reverse_permutation():
    assert list(bit_reverse_permutation(8)) == [0, 4, 2, 6, 1, 5, 3, 7]
    perm = bit_reverse_permutation(64)
    assert sorted(perm) == list(range(64))
    with pytest.raises(ValueError):
        bit_reverse_permutation(10)


@pytest.mark.parametrize("n,bits", [(16, 20), (64, 26), (256, 40), (1024, 50)])
def test_roundtrip(n, bits, rng):
    p = gen_ntt_primes([bits], n)[0]
    plan = NttPlan(n, p)
    a = rng.integers(0, p, n)
    assert np.array_equal(plan.inverse(plan.forward(a)), a)
    assert np.array_equal(plan.forward(plan.inverse(a)), a)


@pytest.mark.parametrize("n", [8, 32])
def test_convolution_theorem_vs_naive(n, rng):
    p = gen_ntt_primes([26], n)[0]
    plan = NttPlan(n, p)
    a = rng.integers(0, p, n)
    b = rng.integers(0, p, n)
    assert np.array_equal(plan.negacyclic_convolve(a, b), naive_negacyclic(a, b, p))


def test_negacyclic_wraparound_sign():
    """X^(n-1) * X = X^n = -1: the defining negacyclic identity."""
    n = 16
    p = gen_ntt_primes([26], n)[0]
    plan = NttPlan(n, p)
    a = np.zeros(n, dtype=np.int64)
    b = np.zeros(n, dtype=np.int64)
    a[n - 1] = 1
    b[1] = 1
    out = plan.negacyclic_convolve(a, b)
    expect = np.zeros(n, dtype=np.int64)
    expect[0] = p - 1  # -1 mod p
    assert np.array_equal(out, expect)


def test_batched_transforms(rng):
    n = 64
    p = gen_ntt_primes([30], n)[0]
    plan = NttPlan(n, p)
    batch = rng.integers(0, p, (5, n))
    fwd = plan.forward(batch)
    assert fwd.shape == (5, n)
    for i in range(5):
        assert np.array_equal(fwd[i], plan.forward(batch[i]))
    assert np.array_equal(plan.inverse(fwd), batch)


def test_constant_poly_is_constant_in_eval_domain(rng):
    """Evaluations of a constant polynomial are that constant everywhere —
    the property mul_plain_scalar relies on."""
    n = 32
    p = gen_ntt_primes([26], n)[0]
    plan = NttPlan(n, p)
    c = np.zeros(n, dtype=np.int64)
    c[0] = 12345
    assert np.all(plan.forward(c) == 12345)


def test_linearity(rng):
    n = 64
    p = gen_ntt_primes([30], n)[0]
    plan = NttPlan(n, p)
    a = rng.integers(0, p, n)
    b = rng.integers(0, p, n)
    left = plan.forward((a + b) % p)
    right = (plan.forward(a) + plan.forward(b)) % p
    assert np.array_equal(left, right)


def test_wrong_length_rejected():
    p = gen_ntt_primes([26], 64)[0]
    plan = NttPlan(64, p)
    with pytest.raises(ValueError):
        plan.forward(np.zeros(32, dtype=np.int64))


def test_non_ntt_prime_rejected():
    with pytest.raises(ValueError):
        NttPlan(64, 1_000_003)  # prime but not 1 mod 128


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=2**26 - 1), min_size=16, max_size=16))
def test_roundtrip_property(coeffs):
    n = 16
    p = gen_ntt_primes([26], n)[0]
    plan = NttPlan(n, p)
    a = np.array(coeffs, dtype=np.int64) % p
    assert np.array_equal(plan.inverse(plan.forward(a)), a)
