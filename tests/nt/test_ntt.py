"""Negacyclic NTT: roundtrip, convolution theorem, batching, lazy paths."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nt.ntt import BatchedNttPlan, NttPlan, bit_reverse_permutation
from repro.nt.primes import gen_ntt_primes


def naive_negacyclic(a, b, p):
    n = len(a)
    out = [0] * n
    for i in range(n):
        for j in range(n):
            k = i + j
            v = int(a[i]) * int(b[j])
            if k >= n:
                out[k - n] = (out[k - n] - v) % p
            else:
                out[k] = (out[k] + v) % p
    return np.array(out, dtype=np.int64)


def test_bit_reverse_permutation():
    assert list(bit_reverse_permutation(8)) == [0, 4, 2, 6, 1, 5, 3, 7]
    perm = bit_reverse_permutation(64)
    assert sorted(perm) == list(range(64))
    with pytest.raises(ValueError):
        bit_reverse_permutation(10)


@pytest.mark.parametrize("n,bits", [(16, 20), (64, 26), (256, 40), (1024, 50)])
def test_roundtrip(n, bits, rng):
    p = gen_ntt_primes([bits], n)[0]
    plan = NttPlan(n, p)
    a = rng.integers(0, p, n)
    assert np.array_equal(plan.inverse(plan.forward(a)), a)
    assert np.array_equal(plan.forward(plan.inverse(a)), a)


@pytest.mark.parametrize("n", [8, 32])
def test_convolution_theorem_vs_naive(n, rng):
    p = gen_ntt_primes([26], n)[0]
    plan = NttPlan(n, p)
    a = rng.integers(0, p, n)
    b = rng.integers(0, p, n)
    assert np.array_equal(plan.negacyclic_convolve(a, b), naive_negacyclic(a, b, p))


def test_negacyclic_wraparound_sign():
    """X^(n-1) * X = X^n = -1: the defining negacyclic identity."""
    n = 16
    p = gen_ntt_primes([26], n)[0]
    plan = NttPlan(n, p)
    a = np.zeros(n, dtype=np.int64)
    b = np.zeros(n, dtype=np.int64)
    a[n - 1] = 1
    b[1] = 1
    out = plan.negacyclic_convolve(a, b)
    expect = np.zeros(n, dtype=np.int64)
    expect[0] = p - 1  # -1 mod p
    assert np.array_equal(out, expect)


def test_batched_transforms(rng):
    n = 64
    p = gen_ntt_primes([30], n)[0]
    plan = NttPlan(n, p)
    batch = rng.integers(0, p, (5, n))
    fwd = plan.forward(batch)
    assert fwd.shape == (5, n)
    for i in range(5):
        assert np.array_equal(fwd[i], plan.forward(batch[i]))
    assert np.array_equal(plan.inverse(fwd), batch)


def test_constant_poly_is_constant_in_eval_domain(rng):
    """Evaluations of a constant polynomial are that constant everywhere —
    the property mul_plain_scalar relies on."""
    n = 32
    p = gen_ntt_primes([26], n)[0]
    plan = NttPlan(n, p)
    c = np.zeros(n, dtype=np.int64)
    c[0] = 12345
    assert np.all(plan.forward(c) == 12345)


def test_linearity(rng):
    n = 64
    p = gen_ntt_primes([30], n)[0]
    plan = NttPlan(n, p)
    a = rng.integers(0, p, n)
    b = rng.integers(0, p, n)
    left = plan.forward((a + b) % p)
    right = (plan.forward(a) + plan.forward(b)) % p
    assert np.array_equal(left, right)


def test_wrong_length_rejected():
    p = gen_ntt_primes([26], 64)[0]
    plan = NttPlan(64, p)
    with pytest.raises(ValueError):
        plan.forward(np.zeros(32, dtype=np.int64))


def test_non_ntt_prime_rejected():
    with pytest.raises(ValueError):
        NttPlan(64, 1_000_003)  # prime but not 1 mod 128


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=2**26 - 1), min_size=16, max_size=16))
def test_roundtrip_property(coeffs):
    n = 16
    p = gen_ntt_primes([26], n)[0]
    plan = NttPlan(n, p)
    a = np.array(coeffs, dtype=np.int64) % p
    assert np.array_equal(plan.inverse(plan.forward(a)), a)


# -- lazy / Shoup reduction paths ---------------------------------------------------
#
# Narrow moduli defer butterfly reductions when (stages+2)*m^2 < 2^63;
# wide moduli replace the (overflowing) direct product with a Shoup
# ratio-multiply, additionally lazy when (2*stages+1)*m < 2^51.  Each
# path must be exact, so convolutions against the O(n^2) big-int naive
# reference are the ground truth across the eligibility boundaries.


@pytest.mark.parametrize(
    "n,bits,lazy",
    [
        (32, 26, True),  # narrow, lazy butterflies
        (32, 40, True),  # wide, Shoup + lazy
        (32, 49, False),  # wide, Shoup, per-stage reduction
        (32, 50, False),  # widest supported modulus
    ],
)
def test_convolution_exact_on_every_reduction_path(n, bits, lazy, rng):
    p = gen_ntt_primes([bits], n)[0]
    plan = NttPlan(n, p)
    assert plan._lazy == lazy, (bits, p)
    a = rng.integers(0, p, n)
    b = rng.integers(0, p, n)
    assert np.array_equal(plan.negacyclic_convolve(a, b), naive_negacyclic(a, b, p))


def test_batched_partitions_and_matches_per_channel(rng):
    """Mixed-width stacks split narrow / lazy-wide / heavy-wide, bit-identically."""
    n = 64
    moduli = tuple(gen_ntt_primes([26, 26, 40, 40, 49, 26], n))
    batched = BatchedNttPlan(n, moduli)
    # three narrow (grouped), two lazy-wide (grouped), one heavy (single)
    assert sorted(len(g.idx) for g in batched.groups) == [2, 3]
    assert len(batched.single) == 1
    heavy = batched.single[0]
    assert moduli[heavy].bit_length() == 49
    assert not batched.plans[heavy]._lazy

    stack = np.stack([rng.integers(0, m, n) for m in moduli])
    fwd = batched.forward(stack)
    for i, m in enumerate(moduli):
        assert np.array_equal(fwd[i], NttPlan.get(n, m).forward(stack[i])), i
    inv = batched.inverse(fwd)
    assert np.array_equal(inv, stack)
    for i, m in enumerate(moduli):
        assert np.array_equal(inv[i], NttPlan.get(n, m).inverse(fwd[i])), i


def test_batched_extra_axes_match_per_channel(rng):
    """(k, B, n) stacks transform each batch row exactly like (k, n)."""
    n = 32
    moduli = tuple(gen_ntt_primes([26, 26, 40, 40], n))
    batched = BatchedNttPlan(n, moduli)
    stack = np.stack([rng.integers(0, m, (3, n)) for m in moduli])
    fwd = batched.forward(stack)
    for i, m in enumerate(moduli):
        for j in range(3):
            assert np.array_equal(fwd[i, j], NttPlan.get(n, m).forward(stack[i, j]))
    assert np.array_equal(batched.inverse(fwd), stack)
