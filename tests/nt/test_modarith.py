"""Vectorised modular arithmetic — exactness against Python big ints."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nt.modarith import (
    MAX_MODULUS_BITS,
    addmod,
    invmod,
    mulmod,
    negmod,
    powmod,
    submod,
)


@pytest.mark.parametrize("mbits", [5, 20, 30, 31, 40, 45, 50])
def test_mulmod_matches_bigint(mbits, rng):
    m = (1 << mbits) - 5
    a = rng.integers(0, m, 500)
    b = rng.integers(0, m, 500)
    out = mulmod(a, b, m)
    for i in range(0, 500, 17):
        assert int(out[i]) == int(a[i]) * int(b[i]) % m


@pytest.mark.parametrize("mbits", [31, 40, 50])
def test_mulmod_extremes(mbits):
    """Worst-case operands (near m) keep the float-Barrett correction in range."""
    m = (1 << mbits) - 1
    while True:
        from repro.nt.primes import is_prime

        if is_prime(m):
            break
        m -= 2
    vals = np.array([0, 1, 2, m - 2, m - 1, m // 2, m // 2 + 1], dtype=np.int64)
    a, b = np.meshgrid(vals, vals)
    out = mulmod(a.ravel(), b.ravel(), m)
    expect = [(int(x) * int(y)) % m for x, y in zip(a.ravel(), b.ravel())]
    assert [int(v) for v in out] == expect


def test_addmod_submod_negmod(rng):
    m = (1 << 40) - 87
    a = rng.integers(0, m, 300)
    b = rng.integers(0, m, 300)
    assert all(int(v) == (int(x) + int(y)) % m for v, x, y in zip(addmod(a, b, m), a, b))
    assert all(int(v) == (int(x) - int(y)) % m for v, x, y in zip(submod(a, b, m), a, b))
    assert all(int(v) == (-int(x)) % m for v, x in zip(negmod(a, m), a))


def test_modulus_too_wide_rejected():
    with pytest.raises(ValueError, match="bits"):
        mulmod(np.array([1]), np.array([1]), 1 << (MAX_MODULUS_BITS + 1))


def test_modulus_too_small_rejected():
    with pytest.raises(ValueError):
        addmod(np.array([0]), np.array([0]), 1)


def test_powmod_invmod():
    m = 1_000_003
    assert powmod(2, 20, m) == pow(2, 20, m)
    assert invmod(12345, m) * 12345 % m == 1
    with pytest.raises(ValueError):
        invmod(m, m)  # gcd != 1


def test_broadcasting_shapes(rng):
    m = (1 << 33) - 9
    a = rng.integers(0, m, (4, 8))
    b = rng.integers(0, m, (1, 8))
    assert mulmod(a, b, m).shape == (4, 8)
    assert addmod(a, np.int64(3), m).shape == (4, 8)


@settings(max_examples=200, deadline=None)
@given(
    a=st.integers(min_value=0, max_value=(1 << 50) - 1),
    b=st.integers(min_value=0, max_value=(1 << 50) - 1),
    m=st.integers(min_value=2, max_value=(1 << 50) - 1),
)
def test_mulmod_property(a, b, m):
    a, b = a % m, b % m
    out = mulmod(np.array([a], dtype=np.int64), np.array([b], dtype=np.int64), m)
    assert int(out[0]) == a * b % m


@settings(max_examples=100, deadline=None)
@given(
    a=st.integers(min_value=0, max_value=(1 << 50) - 1),
    m=st.integers(min_value=2, max_value=(1 << 50) - 1),
)
def test_add_neg_roundtrip_property(a, m):
    a = a % m
    arr = np.array([a], dtype=np.int64)
    assert int(addmod(arr, negmod(arr, m), m)[0]) == 0
