"""CRT compose/decompose — the Fig. 2 mathematics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nt.crt import CrtBasis


@pytest.fixture(scope="module")
def basis():
    return CrtBasis([97, 101, 103, 65537])


def test_rejects_non_coprime():
    with pytest.raises(ValueError, match="co-prime"):
        CrtBasis([6, 10])


def test_rejects_empty_and_small():
    with pytest.raises(ValueError):
        CrtBasis([])
    with pytest.raises(ValueError):
        CrtBasis([1, 7])


def test_roundtrip_scalars(basis, rng):
    xs = rng.integers(0, basis.modulus, 50).astype(object)
    back = basis.compose(basis.decompose(xs))
    assert all(int(a) == int(b) for a, b in zip(back, xs))


def test_roundtrip_signed(basis, rng):
    half = basis.modulus // 2
    xs = np.array([int(v) for v in rng.integers(-(10**9), 10**9, 50)], dtype=object)
    back = basis.compose_centered(basis.decompose(xs))
    assert all(int(a) == int(b) for a, b in zip(back, xs))
    assert half > 10**9  # sanity: range covers the test values


def test_componentwise_add_mul(basis, rng):
    # products must stay below Q ~ 6.6e10 for exact recovery
    x = rng.integers(0, 10**5, 20).astype(object)
    y = rng.integers(0, 10**5, 20).astype(object)
    rx, ry = basis.decompose(x), basis.decompose(y)
    s = basis.compose(basis.add(rx, ry))
    p = basis.compose(basis.mul(rx, ry))
    assert all(int(a) == int(u) + int(v) for a, u, v in zip(s, x, y))
    assert all(int(a) == int(u) * int(v) for a, u, v in zip(p, x, y))


def test_channel_count_checked(basis):
    with pytest.raises(ValueError):
        basis.compose([np.array([1])])  # wrong channel count
    with pytest.raises(ValueError):
        basis.add([np.array([1])], [np.array([1])])


def test_tensor_shapes(basis, rng):
    x = rng.integers(0, 10**6, (3, 4, 5)).astype(object)
    res = basis.decompose(x)
    assert len(res) == 4 and res[0].shape == (3, 4, 5)
    assert basis.compose(res).shape == (3, 4, 5)


def test_wide_modulus_channels():
    """Channels wider than int64 stay as object arrays."""
    from repro.nt.primes import gen_primes

    wide = gen_primes([80, 80])
    basis = CrtBasis(wide)
    x = np.array([1 << 100, 12345], dtype=object)
    res = basis.decompose(x)
    assert res[0].dtype == object
    assert np.array_equal(basis.compose(res), x)


@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=0, max_value=97 * 101 * 103 - 1))
def test_roundtrip_property(x):
    basis = CrtBasis([97, 101, 103])
    res = basis.decompose(np.array([x], dtype=object))
    assert int(basis.compose(res)[0]) == x


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=-(10**4), max_value=10**4),
    st.integers(min_value=-(10**4), max_value=10**4),
)
def test_ring_homomorphism_property(a, b):
    """decompose is a ring homomorphism: ops commute with CRT."""
    basis = CrtBasis([2**13 - 1, 2**17 - 1, 2**19 - 1])
    ra = basis.decompose(np.array([a], dtype=object))
    rb = basis.decompose(np.array([b], dtype=object))
    assert int(basis.compose_centered(basis.mul(ra, rb))[0]) == a * b
    assert int(basis.compose_centered(basis.add(ra, rb))[0]) == a + b
