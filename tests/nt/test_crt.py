"""CRT compose/decompose — the Fig. 2 mathematics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nt.crt import CrtBasis


@pytest.fixture(scope="module")
def basis():
    return CrtBasis([97, 101, 103, 65537])


def test_rejects_non_coprime():
    with pytest.raises(ValueError, match="co-prime"):
        CrtBasis([6, 10])


def test_rejects_empty_and_small():
    with pytest.raises(ValueError):
        CrtBasis([])
    with pytest.raises(ValueError):
        CrtBasis([1, 7])


def test_roundtrip_scalars(basis, rng):
    xs = rng.integers(0, basis.modulus, 50).astype(object)
    back = basis.compose(basis.decompose(xs))
    assert all(int(a) == int(b) for a, b in zip(back, xs))


def test_roundtrip_signed(basis, rng):
    half = basis.modulus // 2
    xs = np.array([int(v) for v in rng.integers(-(10**9), 10**9, 50)], dtype=object)
    back = basis.compose_centered(basis.decompose(xs))
    assert all(int(a) == int(b) for a, b in zip(back, xs))
    assert half > 10**9  # sanity: range covers the test values


def test_componentwise_add_mul(basis, rng):
    # products must stay below Q ~ 6.6e10 for exact recovery
    x = rng.integers(0, 10**5, 20).astype(object)
    y = rng.integers(0, 10**5, 20).astype(object)
    rx, ry = basis.decompose(x), basis.decompose(y)
    s = basis.compose(basis.add(rx, ry))
    p = basis.compose(basis.mul(rx, ry))
    assert all(int(a) == int(u) + int(v) for a, u, v in zip(s, x, y))
    assert all(int(a) == int(u) * int(v) for a, u, v in zip(p, x, y))


def test_channel_count_checked(basis):
    with pytest.raises(ValueError):
        basis.compose([np.array([1])])  # wrong channel count
    with pytest.raises(ValueError):
        basis.add([np.array([1])], [np.array([1])])


def test_tensor_shapes(basis, rng):
    x = rng.integers(0, 10**6, (3, 4, 5)).astype(object)
    res = basis.decompose(x)
    assert len(res) == 4 and res[0].shape == (3, 4, 5)
    assert basis.compose(res).shape == (3, 4, 5)


def test_wide_modulus_channels():
    """Channels wider than int64 stay as object arrays."""
    from repro.nt.primes import gen_primes

    wide = gen_primes([80, 80])
    basis = CrtBasis(wide)
    x = np.array([1 << 100, 12345], dtype=object)
    res = basis.decompose(x)
    assert res[0].dtype == object
    assert np.array_equal(basis.compose(res), x)


@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=0, max_value=97 * 101 * 103 - 1))
def test_roundtrip_property(x):
    basis = CrtBasis([97, 101, 103])
    res = basis.decompose(np.array([x], dtype=object))
    assert int(basis.compose(res)[0]) == x


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=-(10**4), max_value=10**4),
    st.integers(min_value=-(10**4), max_value=10**4),
)
def test_ring_homomorphism_property(a, b):
    """decompose is a ring homomorphism: ops commute with CRT."""
    basis = CrtBasis([2**13 - 1, 2**17 - 1, 2**19 - 1])
    ra = basis.decompose(np.array([a], dtype=object))
    rb = basis.decompose(np.array([b], dtype=object))
    assert int(basis.compose_centered(basis.mul(ra, rb))[0]) == a * b
    assert int(basis.compose_centered(basis.add(ra, rb))[0]) == a + b


# -- vectorised Garner lift vs the big-integer oracle --------------------------
#
# compose_bigint is the classical sum(r_i * e_i) mod Q formula in Python
# big-int arithmetic — exact by construction.  The vectorised Garner
# path (docs/KERNELS.md) must agree with it on every basis shape and on
# the adversarial values its fast paths special-case: zero, +/-1,
# values straddling Q//2, and values whose tail digits are maximal.

# Pools of small primes per bit class used to build random bases.
_PRIMES_BY_BITS = {
    8: [193, 197, 199, 211, 223, 227, 229, 233],
    13: [8191, 8209, 8219, 8221, 8231, 8233, 8237, 8243],
    26: [67108859, 67108837, 67108819, 67108777, 67108763, 67108729],
    31: [2147483647, 2147483629, 2147483587, 2147483579],
    40: [1099511627689, 1099511627581, 1099511627539],
}


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_compose_matches_bigint_oracle_random_bases(data):
    """Garner lift == big-int CRT on random bases of mixed widths."""
    k = data.draw(st.integers(min_value=1, max_value=5))
    moduli = []
    for _ in range(k):
        bits = data.draw(st.sampled_from(sorted(_PRIMES_BY_BITS)))
        pool = [p for p in _PRIMES_BY_BITS[bits] if p not in moduli]
        if not pool:
            continue
        moduli.append(data.draw(st.sampled_from(pool)))
    basis = CrtBasis(moduli)
    q = basis.modulus
    xs = [
        0,
        1,
        q - 1,
        q // 2,
        q // 2 - 1,
        q // 2 + 1 if q > 2 else 0,
        data.draw(st.integers(min_value=0, max_value=q - 1)),
        data.draw(st.integers(min_value=0, max_value=q - 1)),
    ]
    arr = np.array(xs, dtype=object)
    res = basis.decompose(arr)
    want = basis.compose_bigint(res)
    got = basis.compose(res)
    assert all(int(a) == int(b) for a, b in zip(got, want))
    got_c = basis.compose_centered(res)
    # centered convention: values >= Q//2 wrap negative
    want_c = [int(v) - q if int(v) >= q // 2 else int(v) for v in want]
    assert all(int(a) == int(b) for a, b in zip(got_c, want_c))


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.integers(min_value=-(2**40), max_value=2**40), min_size=1, max_size=16
    )
)
def test_signed_recompose_negative_and_small(values):
    """Signed lift recovers negative / tiny values exactly (CNN-RNS range)."""
    basis = CrtBasis([67108859, 67108837, 67108819])
    arr = np.array(values, dtype=object)
    back = basis.compose_centered(basis.decompose(arr))
    assert all(int(a) == int(b) for a, b in zip(back, arr))


def test_compose_near_modulus_and_zero_channels(rng):
    """Per-channel extremes: zero residues, q_i - 1 residues, mixtures."""
    basis = CrtBasis([8191, 8209, 8231, 67108859])
    q = basis.modulus
    specials = np.array(
        [0, 1, q - 1, q // 2, q // 2 - 1, q // 2 + 1], dtype=object
    )
    randoms = rng.integers(0, 2**60, 64).astype(object) % q
    arr = np.concatenate([specials, randoms])
    res = basis.decompose(arr)
    want = basis.compose_bigint(res)
    got = basis.compose(res)
    assert all(int(a) == int(b) for a, b in zip(got, want))


def test_unreduced_residues_accepted(rng):
    """digits() reduces unreduced / object residues on entry."""
    basis = CrtBasis([97, 101, 103])
    x = np.array([12345, 54321], dtype=object)
    res = basis.decompose(x)
    bumped = [r + m for r, m in zip(res, basis.moduli)]  # out of [0, q_i)
    assert np.array_equal(basis.compose(bumped), basis.compose(res))
