"""Shared fixtures: small, fast parameter sets reused across suites."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ckks import CkksContext, CkksParams
from repro.ckksrns import CkksRnsContext, CkksRnsParams


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def ckks_ctx():
    """Small multiprecision CKKS context shared by the ckks suites."""
    return CkksContext(CkksParams(n=128, scale_bits=24, q0_bits=36, levels=4, hw=16))


@pytest.fixture(scope="session")
def ckks_keys(ckks_ctx):
    return ckks_ctx.keygen(7, rotations=(1, 2, 5))


@pytest.fixture(scope="session")
def rns_ctx():
    """Small CKKS-RNS context shared by the ckksrns suites."""
    return CkksRnsContext(
        CkksRnsParams(
            n=128, moduli_bits=(36, 26, 26, 26, 26), scale_bits=26, special_bits=45, hw=16
        )
    )


@pytest.fixture(scope="session")
def rns_keys(rns_ctx):
    return rns_ctx.keygen(7, rotations=(1, 2, 5))
