"""Shared fixtures: small, fast parameter sets reused across suites.

Also installs a per-test watchdog (SIGALRM) so a wedged executor or a
deadlocked pool fails the one test quickly instead of stalling the whole
run — essential for the fault-injection suite, which deliberately hangs
and kills workers.
"""

from __future__ import annotations

import os
import signal
import threading

import numpy as np
import pytest

from repro.ckks import CkksContext, CkksParams
from repro.ckksrns import CkksRnsContext, CkksRnsParams

#: Per-test wall-clock budget in seconds (override via REPRO_TEST_TIMEOUT).
WATCHDOG_SECONDS = int(os.environ.get("REPRO_TEST_TIMEOUT", "300"))


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    """Abort any single test that exceeds the watchdog budget."""
    if (
        WATCHDOG_SECONDS <= 0
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        return (yield)

    def _expired(signum, frame):
        raise TimeoutError(
            f"test exceeded the {WATCHDOG_SECONDS}s per-test watchdog "
            "(hung executor or deadlocked pool?)"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(WATCHDOG_SECONDS)
    try:
        return (yield)
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def ckks_ctx():
    """Small multiprecision CKKS context shared by the ckks suites."""
    return CkksContext(CkksParams(n=128, scale_bits=24, q0_bits=36, levels=4, hw=16))


@pytest.fixture(scope="session")
def ckks_keys(ckks_ctx):
    return ckks_ctx.keygen(7, rotations=(1, 2, 5))


@pytest.fixture(scope="session")
def rns_ctx():
    """Small CKKS-RNS context shared by the ckksrns suites."""
    return CkksRnsContext(
        CkksRnsParams(
            n=128, moduli_bits=(36, 26, 26, 26, 26), scale_bits=26, special_bits=45, hw=16
        )
    )


@pytest.fixture(scope="session")
def rns_keys(rns_ctx):
    return rns_ctx.keygen(7, rotations=(1, 2, 5))
