"""Cross-scheme agreement: CKKS-RNS and multiprecision CKKS compute the
same function (the paper's 'RNS does not compromise accuracy')."""

import numpy as np
import pytest

from repro.ckks import CkksContext, CkksParams
from repro.ckksrns import CkksRnsContext, CkksRnsParams


@pytest.fixture(scope="module")
def pair():
    mp = CkksContext(CkksParams(n=128, scale_bits=26, q0_bits=40, levels=3, hw=16))
    rns = CkksRnsContext(
        CkksRnsParams(n=128, moduli_bits=(40, 26, 26, 26), scale_bits=26, special_bits=45, hw=16)
    )
    return mp, mp.keygen(3), rns, rns.keygen(3)


def test_same_polynomial_evaluation(pair, rng):
    """(0.5 + x) * x^2 under both schemes, against NumPy."""
    mp, mpk, rns, rnsk = pair
    z = rng.uniform(-0.9, 0.9, mp.slots)
    want = (0.5 + z) * z * z

    def run_mp():
        c = mp.encrypt(mpk.pk, z, 1)
        x2 = mp.rescale(mp.square(c, mpk.relin))
        t = mp.add_plain(mp.mod_switch_to(c, x2.level), 0.5)
        return mp.decrypt_real(mpk.sk, mp.rescale(mp.mul(x2, t, mpk.relin)))

    def run_rns():
        c = rns.encrypt(rnsk.pk, z, 1)
        x2 = rns.rescale(rns.square(c, rnsk.relin))
        t = rns.add_plain(rns.mod_switch_to(c, x2.level), 0.5)
        return rns.decrypt_real(rnsk.sk, rns.rescale(rns.mul(x2, t, rnsk.relin)))

    out_mp, out_rns = run_mp(), run_rns()
    assert np.max(np.abs(out_mp - want)) < 5e-3
    assert np.max(np.abs(out_rns - want)) < 5e-3
    assert np.max(np.abs(out_mp - out_rns)) < 1e-2


def test_rotation_agreement(pair, rng):
    mp, mpk, rns, rnsk = pair
    rng2 = np.random.default_rng(0)
    mp.add_galois_key(mpk, 1, rng2)
    rns.add_galois_key(rnsk, 1, rng2)
    z = rng.uniform(-1, 1, mp.slots)
    a = mp.decrypt_real(mpk.sk, mp.rotate(mp.encrypt(mpk.pk, z, 1), 1, mpk.galois))
    b = rns.decrypt_real(rnsk.sk, rns.rotate(rns.encrypt(rnsk.pk, z, 1), 1, rnsk.galois))
    assert np.max(np.abs(a - b)) < 5e-3
