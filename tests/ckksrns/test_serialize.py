"""Ciphertext wire format: roundtrip and tamper detection."""

import numpy as np
import pytest

from repro.ckksrns.serialize import ciphertext_from_bytes, ciphertext_to_bytes


def test_roundtrip(rns_ctx, rns_keys, rng):
    z = rng.uniform(-1, 1, rns_ctx.slots)
    ct = rns_ctx.encrypt(rns_keys.pk, z, rng)
    blob = ciphertext_to_bytes(ct)
    back = ciphertext_from_bytes(blob)
    assert back.level == ct.level
    assert back.scale == ct.scale
    assert np.array_equal(back.c0, ct.c0)
    assert np.array_equal(back.c1, ct.c1)
    out = rns_ctx.decrypt_real(rns_keys.sk, back)
    assert np.allclose(out, z, atol=1e-3)


def test_roundtrip_after_ops(rns_ctx, rns_keys, rng):
    z = rng.uniform(-1, 1, rns_ctx.slots)
    ct = rns_ctx.rescale(
        rns_ctx.square(rns_ctx.encrypt(rns_keys.pk, z, rng), rns_keys.relin)
    )
    back = ciphertext_from_bytes(ciphertext_to_bytes(ct))
    assert np.allclose(rns_ctx.decrypt_real(rns_keys.sk, back), z * z, atol=2e-3)


def test_bad_magic_rejected():
    with pytest.raises(ValueError, match="not a serialised"):
        ciphertext_from_bytes(b"XXXX" + b"\x00" * 32)


def test_truncation_rejected(rns_ctx, rns_keys, rng):
    ct = rns_ctx.encrypt(rns_keys.pk, np.zeros(rns_ctx.slots), rng)
    blob = ciphertext_to_bytes(ct)
    with pytest.raises(ValueError, match="truncated"):
        ciphertext_from_bytes(blob[:-8])
