"""CKKS-RNS parameter sets, including the paper's Table II."""

import pytest

from repro.ckksrns import CkksRnsParams


def test_defaults():
    p = CkksRnsParams()
    assert p.chain_length == 7
    assert p.levels == 6
    assert p.scale == float(1 << 26)


def test_validation():
    with pytest.raises(ValueError):
        CkksRnsParams(n=100)
    with pytest.raises(ValueError):
        CkksRnsParams(moduli_bits=())
    with pytest.raises(ValueError):
        CkksRnsParams(moduli_bits=(60,))  # beyond 50-bit cap
    with pytest.raises(ValueError):
        CkksRnsParams(moduli_bits=(40,), special_bits=30)  # special < largest


def test_paper_table2():
    p = CkksRnsParams.paper_table2()
    assert p.n == 2**14
    assert p.log_q == 366
    assert p.moduli_bits[0] == 40 and p.moduli_bits[-1] == 40
    assert set(p.moduli_bits[1:-1]) == {26}
    assert p.scale_bits == 26


def test_for_chain_length_budget():
    p3 = CkksRnsParams.for_chain_length(3, total_bits=120)
    assert p3.chain_length == 3
    assert all(b <= 50 for b in p3.moduli_bits)
    p9 = CkksRnsParams.for_chain_length(9, total_bits=366)
    assert p9.chain_length == 9
    with pytest.raises(ValueError):
        CkksRnsParams.for_chain_length(0)
