"""Property test: random straight-line programs evaluate homomorphically.

Generates short random arithmetic programs (add / sub / plain-scalar mul
/ square with rescale) and checks the CKKS-RNS evaluation tracks the
exact NumPy evaluation — a randomized version of the homomorphism
diagram in the paper's Fig. 1.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ckksrns import CkksRnsContext, CkksRnsParams

_ctx = CkksRnsContext(
    CkksRnsParams(n=64, moduli_bits=(36, 26, 26, 26), scale_bits=26, special_bits=45, hw=8)
)
_keys = _ctx.keygen(0)

_op = st.sampled_from(["add_self", "sub_plain", "scale", "square"])


@settings(max_examples=25, deadline=None)
@given(ops=st.lists(_op, min_size=1, max_size=4), seed=st.integers(0, 100))
def test_random_program(ops, seed):
    rng = np.random.default_rng(seed)
    z = rng.uniform(-0.8, 0.8, _ctx.slots)
    ct = _ctx.encrypt(_keys.pk, z, rng)
    ref = z.copy()
    levels_used = 0
    for op in ops:
        if op == "add_self":
            ct = _ctx.add(ct, ct)
            ref = ref + ref
        elif op == "sub_plain":
            ct = _ctx.add_plain(ct, -0.25)
            ref = ref - 0.25
        elif op == "scale":
            if levels_used >= _ctx.top_level:
                continue
            ct = _ctx.rescale(_ctx.mul_plain_scalar(ct, 0.5))
            ref = ref * 0.5
            levels_used += 1
        elif op == "square":
            if levels_used >= _ctx.top_level or np.max(np.abs(ref)) > 40:
                continue
            ct = _ctx.rescale(_ctx.square(ct, _keys.relin))
            ref = ref * ref
            levels_used += 1
    out = _ctx.decrypt_real(_keys.sk, ct)
    tol = 1e-2 * max(1.0, float(np.max(np.abs(ref))))
    assert np.max(np.abs(out - ref)) < tol
