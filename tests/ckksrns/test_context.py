"""Full-RNS CKKS: primitives, depth chains, agreement with plaintext math."""

import numpy as np
import pytest

from repro.ckksrns import CkksRnsContext, CkksRnsParams


def _enc(ctx, keys, z, rng):
    return ctx.encrypt(keys.pk, z, rng)


def test_context_moduli(rns_ctx):
    p = rns_ctx.params
    assert len(rns_ctx.moduli) == p.chain_length
    assert len(set(rns_ctx.ext_moduli)) == p.chain_length + 1
    for m, bits in zip(rns_ctx.moduli, p.moduli_bits):
        assert m.bit_length() == bits
        assert m % (2 * p.n) == 1


def test_encrypt_decrypt(rns_ctx, rns_keys, rng):
    z = rng.uniform(-1, 1, rns_ctx.slots)
    ct = _enc(rns_ctx, rns_keys, z, rng)
    assert ct.level == rns_ctx.top_level
    assert ct.c0.shape == (rns_ctx.k_top, rns_ctx.n)
    assert np.max(np.abs(rns_ctx.decrypt_real(rns_keys.sk, ct) - z)) < 1e-3


def test_add_sub_neg(rns_ctx, rns_keys, rng):
    z1 = rng.uniform(-1, 1, rns_ctx.slots)
    z2 = rng.uniform(-1, 1, rns_ctx.slots)
    c1, c2 = _enc(rns_ctx, rns_keys, z1, rng), _enc(rns_ctx, rns_keys, z2, rng)
    sk = rns_keys.sk
    assert np.allclose(rns_ctx.decrypt_real(sk, rns_ctx.add(c1, c2)), z1 + z2, atol=1e-3)
    assert np.allclose(rns_ctx.decrypt_real(sk, rns_ctx.sub(c1, c2)), z1 - z2, atol=1e-3)
    assert np.allclose(rns_ctx.decrypt_real(sk, rns_ctx.negate(c1)), -z1, atol=1e-3)


def test_mul_relin_rescale(rns_ctx, rns_keys, rng):
    z1 = rng.uniform(-1, 1, rns_ctx.slots)
    z2 = rng.uniform(-1, 1, rns_ctx.slots)
    c1, c2 = _enc(rns_ctx, rns_keys, z1, rng), _enc(rns_ctx, rns_keys, z2, rng)
    cm = rns_ctx.rescale(rns_ctx.mul(c1, c2, rns_keys.relin))
    assert cm.level == c1.level - 1
    assert cm.k == c1.k - 1
    assert np.allclose(rns_ctx.decrypt_real(rns_keys.sk, cm), z1 * z2, atol=2e-3)


def test_rescale_divides_by_dropped_prime(rns_ctx, rns_keys, rng):
    z = rng.uniform(-1, 1, rns_ctx.slots)
    c = _enc(rns_ctx, rns_keys, z, rng)
    cm = rns_ctx.mul(c, c, rns_keys.relin)
    dropped = rns_ctx.moduli[cm.k - 1]
    r = rns_ctx.rescale(cm)
    assert np.isclose(r.scale, cm.scale / dropped)


def test_square(rns_ctx, rns_keys, rng):
    z = rng.uniform(-1, 1, rns_ctx.slots)
    c = _enc(rns_ctx, rns_keys, z, rng)
    cs = rns_ctx.rescale(rns_ctx.square(c, rns_keys.relin))
    assert np.allclose(rns_ctx.decrypt_real(rns_keys.sk, cs), z * z, atol=2e-3)


def test_plain_ops(rns_ctx, rns_keys, rng):
    z = rng.uniform(-1, 1, rns_ctx.slots)
    w = rng.uniform(-1, 1, rns_ctx.slots)
    c = _enc(rns_ctx, rns_keys, z, rng)
    sk = rns_keys.sk
    assert np.allclose(rns_ctx.decrypt_real(sk, rns_ctx.add_plain(c, w)), z + w, atol=1e-3)
    assert np.allclose(rns_ctx.decrypt_real(sk, rns_ctx.add_plain(c, 0.25)), z + 0.25, atol=1e-3)
    cp = rns_ctx.rescale(rns_ctx.mul_plain(c, w))
    assert np.allclose(rns_ctx.decrypt_real(sk, cp), z * w, atol=2e-3)
    cs = rns_ctx.rescale(rns_ctx.mul_plain_scalar(c, -1.5))
    assert np.allclose(rns_ctx.decrypt_real(sk, cs), -1.5 * z, atol=2e-3)


def test_plaintext_reuse(rns_ctx, rns_keys, rng):
    """An encoded RnsPlaintext multiplies many ciphertexts."""
    z1 = rng.uniform(-1, 1, rns_ctx.slots)
    z2 = rng.uniform(-1, 1, rns_ctx.slots)
    w = rng.uniform(-1, 1, rns_ctx.slots)
    pt = rns_ctx.encode(w)
    for z in (z1, z2):
        c = _enc(rns_ctx, rns_keys, z, rng)
        out = rns_ctx.decrypt_real(rns_keys.sk, rns_ctx.rescale(rns_ctx.mul_plain(c, pt)))
        assert np.allclose(out, z * w, atol=2e-3)


def test_rotation(rns_ctx, rns_keys, rng):
    z = rng.uniform(-1, 1, rns_ctx.slots)
    c = _enc(rns_ctx, rns_keys, z, rng)
    for r in (1, 2, 5):
        out = rns_ctx.decrypt_real(rns_keys.sk, rns_ctx.rotate(c, r, rns_keys.galois))
        assert np.allclose(out, np.roll(z, -r), atol=2e-3), f"rotation {r}"


def test_rotation_missing_key(rns_ctx, rns_keys, rng):
    c = _enc(rns_ctx, rns_keys, np.zeros(rns_ctx.slots), rng)
    with pytest.raises(KeyError):
        rns_ctx.rotate(c, 7, rns_keys.galois)


def test_depth_chain_to_bottom(rns_ctx, rns_keys, rng):
    z = rng.uniform(-0.9, 0.9, rns_ctx.slots)
    c = _enc(rns_ctx, rns_keys, z, rng)
    want = z.copy()
    for _ in range(rns_ctx.top_level):
        c = rns_ctx.rescale(rns_ctx.square(c, rns_keys.relin))
        want = want * want
    assert c.level == 0
    assert np.max(np.abs(rns_ctx.decrypt_real(rns_keys.sk, c) - want)) < 1e-2


def test_mod_switch_drops_channels(rns_ctx, rns_keys, rng):
    z = rng.uniform(-1, 1, rns_ctx.slots)
    c = _enc(rns_ctx, rns_keys, z, rng)
    low = rns_ctx.mod_switch_to(c, 1)
    assert low.k == 2
    assert np.allclose(rns_ctx.decrypt_real(rns_keys.sk, low), z, atol=1e-3)
    with pytest.raises(ValueError):
        rns_ctx.mod_switch_to(low, 3)


def test_add_aligns_levels(rns_ctx, rns_keys, rng):
    z = rng.uniform(-1, 1, rns_ctx.slots)
    c = _enc(rns_ctx, rns_keys, z, rng)
    low = rns_ctx.mod_switch_to(c, 1)
    out = rns_ctx.decrypt_real(rns_keys.sk, rns_ctx.add(c, low))
    assert np.allclose(out, 2 * z, atol=1e-3)


def test_scale_mismatch_rejected(rns_ctx, rns_keys, rng):
    z = rng.uniform(-1, 1, rns_ctx.slots)
    c = _enc(rns_ctx, rns_keys, z, rng)
    cp = rns_ctx.mul_plain_scalar(c, 0.3)
    with pytest.raises(ValueError, match="scale"):
        rns_ctx.add(c, cp)


def test_rescale_to_match(rns_ctx, rns_keys, rng):
    z = rng.uniform(-1, 1, rns_ctx.slots)
    c = _enc(rns_ctx, rns_keys, z, rng)
    c2 = rns_ctx.mul_plain_scalar(c, 1.0)  # scale Δ^2
    matched = rns_ctx.rescale_to_match(c2, c.scale)
    assert np.isclose(matched.scale, c.scale, rtol=1e-3)


def test_wrong_key_fails(rns_ctx, rns_keys, rng):
    z = np.full(rns_ctx.slots, 0.5)
    c = _enc(rns_ctx, rns_keys, z, rng)
    other = rns_ctx.keygen(4242)
    garbage = rns_ctx.decrypt_real(other.sk, c)
    assert np.max(np.abs(garbage - z)) > 1.0


def test_deterministic_keygen(rns_ctx):
    k1 = rns_ctx.keygen(11)
    k2 = rns_ctx.keygen(11)
    assert np.array_equal(k1.sk.s_coeff, k2.sk.s_coeff)
    assert np.array_equal(k1.pk.a, k2.pk.a)
