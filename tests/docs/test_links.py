"""Docs stay navigable: the link checker passes, and key files exist."""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent.parent
CHECKER = REPO / "tools" / "check_docs_links.py"


def test_docs_link_check_passes():
    proc = subprocess.run(
        [sys.executable, str(CHECKER), str(REPO)],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stderr


def test_checker_flags_broken_links(tmp_path):
    (tmp_path / "a.md").write_text("see [other](missing.md) and [anchor](b.md#nope)\n")
    (tmp_path / "b.md").write_text("# Real Heading\n")
    proc = subprocess.run(
        [sys.executable, str(CHECKER), str(tmp_path)],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 1
    assert "missing.md" in proc.stderr
    assert "b.md#nope" in proc.stderr


def test_architecture_and_observability_docs_linked_from_readme():
    readme = (REPO / "README.md").read_text()
    assert "docs/ARCHITECTURE.md" in readme
    assert "docs/OBSERVABILITY.md" in readme
    assert (REPO / "docs" / "ARCHITECTURE.md").exists()
    assert (REPO / "docs" / "OBSERVABILITY.md").exists()


def test_kernels_doc_linked_from_key_pages():
    """docs/KERNELS.md exists and is reachable from the entry points."""
    assert (REPO / "docs" / "KERNELS.md").exists()
    assert "docs/KERNELS.md" in (REPO / "README.md").read_text()
    assert "KERNELS.md" in (REPO / "docs" / "ARCHITECTURE.md").read_text()
    assert "KERNELS.md" in (REPO / "docs" / "PERFORMANCE.md").read_text()
