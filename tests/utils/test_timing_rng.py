"""Utilities: latency statistics and RNG plumbing."""

import math

import numpy as np
import pytest

from repro.utils.rng import derive_rng, spawn_rngs
from repro.utils.timing import LatencyStats, Timer, time_call


def test_timer_measures():
    with Timer() as t:
        sum(range(10000))
    assert t.elapsed > 0


def test_latency_stats():
    s = LatencyStats()
    for v in (0.2, 0.1, 0.3):
        s.add(v)
    assert s.count == 3
    assert math.isclose(s.min, 0.1)
    assert math.isclose(s.max, 0.3)
    assert math.isclose(s.avg, 0.2)
    assert s.std > 0
    assert s.row() == {"min": s.min, "max": s.max, "avg": s.avg}
    with pytest.raises(ValueError):
        s.add(-1.0)


def test_latency_stats_empty_and_merge():
    s = LatencyStats()
    assert math.isnan(s.avg)
    assert s.std == 0.0
    merged = s.merge(LatencyStats([1.0, 2.0]))
    assert merged.count == 2


def test_time_call():
    result, stats = time_call(lambda a: a + 1, 41, repeats=3)
    assert result == 42
    assert stats.count == 3
    with pytest.raises(ValueError):
        time_call(lambda: None, repeats=0)


def test_derive_rng_passthrough_and_seed():
    g = np.random.default_rng(5)
    assert derive_rng(g) is g
    a = derive_rng(7).integers(0, 100, 5)
    b = derive_rng(7).integers(0, 100, 5)
    assert np.array_equal(a, b)


def test_spawn_rngs_independent():
    children = spawn_rngs(0, 4)
    assert len(children) == 4
    draws = [c.integers(0, 2**31) for c in children]
    assert len(set(draws)) == 4  # overwhelmingly likely
    # deterministic: same parent seed -> same children
    again = [c.integers(0, 2**31) for c in spawn_rngs(0, 4)]
    assert draws == again
    with pytest.raises(ValueError):
        spawn_rngs(0, -1)
