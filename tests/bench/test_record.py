"""BENCH_*.json records: schema, derivation, regression comparison, CLI."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.bench.record import (
    SCHEMA,
    compare_records,
    derive_results,
    env_fingerprint,
    load_record,
    make_record,
    validate_record,
    write_record,
)

TOOL = Path(__file__).resolve().parents[2] / "tools" / "bench_compare.py"

HEADERS = ["stage", "ms", "accuracy (%)"]
ROWS = [["decompose", 1.5, 99.0], ["recompose", 20.0, 99.0]]


def test_env_fingerprint_fields():
    env = env_fingerprint()
    assert set(env) == {"python", "numpy", "platform", "machine", "cpus", "preset"}
    assert env["cpus"] >= 1


def test_derive_results_keeps_only_time_like_columns():
    res = derive_results(HEADERS, ROWS)
    assert res == {"decompose.ms": 1.5, "recompose.ms": 20.0}
    # NaN cells (skipped configs) and non-numeric cells never surface
    assert derive_results(["op", "ms"], [["a", float("nan")], ["b", "-"]]) == {}


def test_make_record_is_schema_valid():
    rec = make_record("fig2", HEADERS, ROWS, title="FIG 2")
    assert validate_record(rec) == []
    assert rec["schema"] == SCHEMA
    assert rec["results"]["recompose.ms"] == 20.0
    assert rec["table"]["headers"] == HEADERS


def test_write_load_round_trip(tmp_path):
    rec = make_record("fig2", HEADERS, ROWS, title="FIG 2")
    path = write_record(rec, tmp_path)
    assert path.name == "BENCH_fig2.json"
    loaded = load_record(path)
    assert loaded == json.loads(json.dumps(rec))


def test_validate_rejects_malformed_records(tmp_path):
    assert validate_record([]) == ["record is not an object"]
    rec = make_record("x", HEADERS, ROWS)
    bad = dict(rec, schema="other/9")
    assert any("schema" in p for p in validate_record(bad))
    del bad["env"]
    assert any("env" in p for p in validate_record(bad))
    bad2 = dict(rec, results={"k": "fast"})
    assert any("not a number" in p for p in validate_record(bad2))
    with pytest.raises(ValueError):
        write_record(bad2, tmp_path)
    p = tmp_path / "BENCH_bad.json"
    p.write_text(json.dumps({"schema": "other"}))
    with pytest.raises(ValueError):
        load_record(p)


def test_compare_flags_50_percent_regression():
    base = make_record("fig2", HEADERS, ROWS)
    slow = [["decompose", 1.5, 99.0], ["recompose", 30.0, 99.0]]
    cur = make_record("fig2", HEADERS, slow)
    diff = compare_records(base, cur, threshold=0.25)
    assert diff["env_match"] is True
    assert [r["key"] for r in diff["regressions"]] == ["recompose.ms"]
    assert diff["regressions"][0]["ratio"] == pytest.approx(1.5)
    # within threshold: clean
    assert compare_records(base, base, threshold=0.25)["regressions"] == []


def test_compare_reports_keys_dropped_from_current():
    base = make_record("fig2", HEADERS, ROWS)
    cur = make_record("fig2", HEADERS, ROWS[:1])
    diff = compare_records(base, cur)
    assert diff["missing"] == ["recompose.ms"]


def _run_cli(*args):
    return subprocess.run(
        [sys.executable, str(TOOL), *args], capture_output=True, text=True
    )


def test_cli_exits_nonzero_on_injected_regression(tmp_path):
    baseline_dir = tmp_path / "baselines"
    current_dir = tmp_path / "current"
    write_record(make_record("fig2", HEADERS, ROWS), baseline_dir)
    slow = [[r[0], r[1] * 1.5, r[2]] for r in ROWS]
    write_record(make_record("fig2", HEADERS, slow), current_dir)

    proc = _run_cli("--baseline", str(baseline_dir), "--current", str(current_dir))
    assert proc.returncode == 1
    assert "REGRESSION" in proc.stdout

    warn = _run_cli(
        "--baseline", str(baseline_dir), "--current", str(current_dir), "--warn-only"
    )
    assert warn.returncode == 0
    assert "REGRESSION" in warn.stdout


def test_cli_clean_and_missing_current(tmp_path):
    baseline_dir = tmp_path / "baselines"
    current_dir = tmp_path / "current"
    write_record(make_record("fig2", HEADERS, ROWS), baseline_dir)
    write_record(make_record("fig2", HEADERS, ROWS), current_dir)
    assert _run_cli("--baseline", str(baseline_dir), "--current", str(current_dir)).returncode == 0

    # a baseline with no current record is a failure, not a silent skip
    write_record(make_record("other", HEADERS, ROWS), baseline_dir)
    proc = _run_cli("--baseline", str(baseline_dir), "--current", str(current_dir))
    assert proc.returncode == 1 and "MISSING" in proc.stdout


def test_cli_markdown_table(tmp_path):
    """--markdown emits a PR-ready GitHub table alongside the report."""
    baseline_dir = tmp_path / "baselines"
    current_dir = tmp_path / "current"
    write_record(make_record("fig2", HEADERS, ROWS), baseline_dir)
    write_record(make_record("fig2", HEADERS, ROWS), current_dir)
    proc = _run_cli(
        "--baseline", str(baseline_dir), "--current", str(current_dir), "--markdown"
    )
    assert proc.returncode == 0
    assert "| benchmark | key | baseline | current | ratio | status |" in proc.stdout
    assert "| fig2 | recompose.ms |" in proc.stdout
    assert "| 1.00x | ok |" in proc.stdout


def test_committed_baselines_are_schema_valid():
    baselines = Path(__file__).resolve().parents[2] / "bench_artifacts" / "baselines"
    records = sorted(baselines.glob("BENCH_*.json"))
    assert len(records) >= 2, "at least two committed baseline records expected"
    for path in records:
        rec = load_record(path)  # raises on schema violations
        assert rec["results"], f"{path.name} carries no comparable results"
