"""Workload preparation: training cache, engine factory."""

import numpy as np
import pytest

from repro.bench.presets import get_preset
from repro.bench.workloads import make_engine, prepare_models


@pytest.fixture(scope="module")
def models():
    # tiny preset; hits the on-disk cache after the first benchmarks run
    return prepare_models("cnn1", get_preset("tiny"))


def test_prepare_models_contents(models):
    assert models.arch == "cnn1"
    assert models.depth == 9
    assert models.input_shape == (1, 12, 12)
    assert 0.5 < models.relu_acc <= 1.0
    assert 0.5 < models.slaf_acc <= 1.0
    assert models.x_test.shape[1:] == (1, 12, 12)


def test_cache_roundtrip_deterministic():
    a = prepare_models("cnn1", get_preset("tiny"))
    b = prepare_models("cnn1", get_preset("tiny"))
    assert np.array_equal(
        a.slaf_model.parameters()[0].data, b.slaf_model.parameters()[0].data
    )
    assert a.slaf_acc == b.slaf_acc


def test_unknown_arch_rejected():
    with pytest.raises(ValueError):
        prepare_models("resnet", get_preset("tiny"))


def test_make_engine_kinds(models):
    for kind in ("mock",):
        eng = make_engine(models, kind)
        logits = eng.classify(models.x_test[:4])
        assert logits.shape == (4, 10)
    with pytest.raises(ValueError):
        make_engine(models, "gpu")
