"""Benchmark harness plumbing: presets, table formatting, static tables."""

import numpy as np
import pytest

from repro.bench.presets import PRESETS, get_preset
from repro.bench.tables import TABLE1_REFERENCE, format_table, table1_rows, table2_rows
from repro.ckksrns import CkksRnsParams


def test_presets_resolve(monkeypatch):
    assert get_preset("tiny").name == "tiny"
    monkeypatch.setenv("REPRO_BENCH_PRESET", "reduced")
    assert get_preset().name == "reduced"
    with pytest.raises(ValueError):
        get_preset("giant")


def test_preset_params_cover_depth():
    for preset in PRESETS.values():
        p = preset.rns_params(depth=9)
        assert p.levels == 9
        mp = preset.mp_params(depth=9)
        assert mp.levels == 9


def test_format_table():
    out = format_table(["a", "bb"], [[1, 2.5], ["x", "y"]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert "2.50" in out


def test_table1_reference_matches_paper_rows():
    names = {r[1] for r in TABLE1_REFERENCE}
    assert {"CryptoNets", "Lo-La", "nGraph-HE", "E2DM", "HCNN"} <= names
    headers, rows = table1_rows(measured=[("CNN1-HE-RNS", 1.23, 98.0)])
    assert headers[0] == "Year"
    assert rows[-1][1] == "CNN1-HE-RNS"
    assert len(rows) == len(TABLE1_REFERENCE) + 1


def test_table2_reports_paper_setting():
    headers, rows = table2_rows(CkksRnsParams.paper_table2())
    d = {r[0]: r[1] for r in rows}
    assert d["N"] == 2**14
    assert d["log q"] == 366
    assert d["L"] == 12  # 13 primes -> 12 rescale levels in our convention
    assert d["HE-standard OK"] is True
