"""BatchedCloudService: the dynamic-batching gateway end to end.

The load-bearing claim of the serving layer is tested here on every
backend family: running requests *through* the batching gateway yields
**bit-identical** scores to classifying each request serially — slot
packing is an execution strategy, never an approximation.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.ckks import CkksParams
from repro.ckksrns import CkksRnsParams
from repro.henn.backend import CkksBackend, CkksRnsBackend, MockBackend
from repro.henn.layers import HeConv2d, HeFlatten, HeLinear, HePoly
from repro.henn.protocol import (
    BatchedCloudService,
    Client,
    CloudResponse,
    CloudService,
    ServiceError,
)
from repro.obs.logs import capture_logs
from repro.resilience.errors import ProtocolError

SHAPE = (1, 6, 6)


@pytest.fixture(scope="module")
def layers():
    rng = np.random.default_rng(0)
    return [
        HeConv2d(rng.normal(0, 0.4, (2, 1, 3, 3)), np.zeros(2), stride=2),
        HePoly([0.1, 0.5, 0.25]),
        HeFlatten(),
        HeLinear(rng.normal(0, 0.3, (10, 8)), np.zeros(10)),
    ]


@pytest.fixture(scope="module")
def images():
    return np.random.default_rng(1).uniform(0, 1, (6, 1, 6, 6))


def _mock():
    return MockBackend(batch=8, levels=6)


def _backends():
    yield "mock", _mock()
    yield "ckksrns", CkksRnsBackend(
        CkksRnsParams(
            n=128, moduli_bits=(36, 26, 26, 26, 26, 26), scale_bits=26, special_bits=45, hw=16
        ),
        seed=0,
    )
    yield "ckks", CkksBackend(CkksParams(n=128, levels=6, scale_bits=26), seed=0)


@pytest.mark.parametrize("name,backend", list(_backends()), ids=lambda v: v if isinstance(v, str) else "")
def test_batched_scores_bit_identical_to_serial(name, backend, layers, images):
    """Acceptance: the same ciphertexts, classified serially and through
    a coalesced batch, decrypt to byte-for-byte equal logits."""
    n = 3
    client = Client(backend, SHAPE)
    serial = CloudService(backend, layers, SHAPE)
    encs = [client.encrypt_request(images[i : i + 1]) for i in range(n)]
    want = [client.decrypt_response(serial.classify_encrypted(e), batch=1) for e in encs]

    gateway = BatchedCloudService(backend, layers, SHAPE, max_wait_ms=50.0)
    futures = [gateway.submit(e, count=1) for e in encs]
    for i, future in enumerate(futures):
        response = future.result(timeout=120)
        assert response.ok, response.error
        got = client.decrypt_response(response.scores, batch=1)
        assert np.array_equal(got, want[i]), f"{name}: batched != serial for request {i}"
    assert gateway.scheduler.stats()["requests_completed"] == n
    gateway.close()


def test_concurrent_clients_coalesce_into_batches(layers, images):
    backend = _mock()
    client = Client(backend, SHAPE)
    serial = CloudService(backend, layers, SHAPE)
    gateway = BatchedCloudService(backend, layers, SHAPE, max_wait_ms=25.0)
    n = 6
    encs = [client.encrypt_request(images[i : i + 1]) for i in range(n)]
    want = [client.decrypt_response(serial.classify_encrypted(e), batch=1) for e in encs]

    results: list[np.ndarray | None] = [None] * n

    def worker(i):
        response = gateway.try_classify(encs[i], count=1)
        assert response.ok, response.error
        results[i] = client.decrypt_response(response.scores, batch=1)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    for i in range(n):
        assert np.array_equal(results[i], want[i])
    stats = gateway.scheduler.stats()
    assert stats["requests_completed"] == n
    assert stats["batches"] < n, "requests were never coalesced"
    gateway.close()


def test_multi_image_requests_share_a_batch(layers, images):
    backend = _mock()
    client = Client(backend, SHAPE)
    serial = CloudService(backend, layers, SHAPE)
    gateway = BatchedCloudService(backend, layers, SHAPE, max_wait_ms=25.0)
    enc_a = client.encrypt_request(images[:2])
    enc_b = client.encrypt_request(images[2:5])
    want_a = client.decrypt_response(serial.classify_encrypted(enc_a), batch=2)
    want_b = client.decrypt_response(serial.classify_encrypted(enc_b), batch=3)
    # slot counts are discovered from the mock handles (no count= needed)
    fa, fb = gateway.submit(enc_a), gateway.submit(enc_b)
    ra, rb = fa.result(timeout=30), fb.result(timeout=30)
    assert ra.ok and rb.ok
    assert np.array_equal(client.decrypt_response(ra.scores, batch=2), want_a)
    assert np.array_equal(client.decrypt_response(rb.scores, batch=3), want_b)
    gateway.close()


def test_admission_rejects_malformed_without_poisoning_batchmates(layers, images):
    backend = _mock()
    client = Client(backend, SHAPE)
    gateway = BatchedCloudService(backend, layers, SHAPE, max_wait_ms=25.0)
    good = client.encrypt_request(images[:1])
    wrong_shape = np.empty((1, 5, 5), dtype=object)
    # a drifted ciphertext: consumed levels disqualify it at admission
    drifted = client.encrypt_request(images[:1]).copy()
    drifted[0, 0, 0] = backend.rescale(backend.square(drifted[0, 0, 0]))

    good_future = gateway.submit(good, count=1)
    bad_shape = gateway.try_classify(wrong_shape)
    bad_level = gateway.try_classify(drifted, count=1)
    bad_count = gateway.try_classify(client.encrypt_request(images[:2]), count=1)

    for response in (bad_shape, bad_level, bad_count):
        assert not response.ok
        assert response.error.code == "RequestValidationError"
        assert response.error.category == "state"
        assert not response.error.retryable
    good_response = good_future.result(timeout=30)
    assert good_response.ok, "a rejected request must not fail its batchmates"
    gateway.close()


def test_error_detail_never_echoes_request_data(layers, images):
    backend = _mock()
    client = Client(backend, SHAPE)
    gateway = BatchedCloudService(backend, layers, SHAPE)
    drifted = client.encrypt_request(images[:1]).copy()
    drifted[0, 0, 0] = backend.rescale(backend.square(drifted[0, 0, 0]))
    response = gateway.try_classify(drifted, count=1)
    # canned sentence from the fixed vocabulary, no interpolation
    assert response.error.detail == "request rejected at admission"
    gateway.close()


def test_backpressure_returns_retryable_overload(layers, images):
    backend = _mock()
    client = Client(backend, SHAPE)
    gateway = BatchedCloudService(
        backend, layers, SHAPE, max_wait_ms=500.0, max_queue_depth=2
    )
    enc = lambda: client.encrypt_request(images[:1])  # noqa: E731
    # the 500 ms deadline keeps both admitted requests queued (2 of 8
    # slots used: not full, not blocked), so the queue is provably at
    # its depth-2 bound when the third request arrives
    admitted = [gateway.submit(enc(), count=1) for _ in range(2)]
    overloaded = gateway.try_classify(enc(), count=1)
    assert not overloaded.ok
    assert overloaded.error.category == "overload"
    assert overloaded.error.retryable
    assert all(f.result(timeout=60).ok for f in admitted)
    gateway.close()


def test_classify_encrypted_routes_through_queue_and_raises(layers, images):
    backend = _mock()
    client = Client(backend, SHAPE)
    gateway = BatchedCloudService(backend, layers, SHAPE, max_wait_ms=5.0)
    enc = client.encrypt_request(images[:1])
    scores = gateway.classify_encrypted(enc)
    assert client.decrypt_response(scores, batch=1).shape == (1, 10)
    with pytest.raises(ProtocolError):
        gateway.classify_encrypted(np.empty((9, 9, 9), dtype=object))
    gateway.close()


def test_health_reports_scheduler_stats(layers, images):
    backend = _mock()
    client = Client(backend, SHAPE)
    with BatchedCloudService(backend, layers, SHAPE, max_wait_ms=5.0) as gateway:
        assert gateway.try_classify(client.encrypt_request(images[:1]), count=1).ok
        health = gateway._health()
        assert health["ready"] is True
        assert health["serving"]["requests_completed"] == 1
        assert health["serving"]["max_batch_slots"] == backend.max_batch
        assert health["last_latency_seconds"] > 0


def test_request_lifecycle_events_have_unique_ids(layers, images):
    backend = _mock()
    client = Client(backend, SHAPE)
    gateway = BatchedCloudService(backend, layers, SHAPE, max_wait_ms=25.0)
    encs = [client.encrypt_request(images[i : i + 1]) for i in range(4)]
    with capture_logs() as buf:
        futures = [gateway.submit(e, count=1) for e in encs]
        assert all(f.result(timeout=30).ok for f in futures)
    records = buf.records()
    starts = [r["request"] for r in records if r["event"] == "henn.request.start"]
    oks = [r["request"] for r in records if r["event"] == "henn.request.ok"]
    assert len(starts) == 4 and len(set(starts)) == 4
    assert sorted(oks) == sorted(starts)
    gateway.close()


def test_close_after_close_is_idempotent(layers):
    gateway = BatchedCloudService(_mock(), layers, SHAPE)
    gateway.close()
    gateway.close()
    response = gateway.try_classify(np.empty(SHAPE, dtype=object))
    assert not response.ok  # shut down or invalid — never a hang


@pytest.mark.faults
def test_concurrent_submitters_with_poison_and_overload(layers, images):
    """Acceptance: under concurrent load with mid-admission rejections
    and a bounded queue, every submitter gets exactly one answer."""
    backend = _mock()
    client = Client(backend, SHAPE)
    serial = CloudService(backend, layers, SHAPE)
    gateway = BatchedCloudService(
        backend, layers, SHAPE, max_wait_ms=2.0, max_queue_depth=8
    )
    n = 24
    encs, want = [], []
    for i in range(n):
        enc = client.encrypt_request(images[i % len(images)][None])
        if i % 5 == 0:  # poison: drift the level of one handle
            enc = enc.copy()
            enc[0, 0, 0] = backend.rescale(backend.square(enc[0, 0, 0]))
            want.append(None)
        else:
            want.append(client.decrypt_response(serial.classify_encrypted(enc), batch=1))
        encs.append(enc)

    outcomes: list[str | None] = [None] * n

    def submitter(i):
        for _ in range(20):  # bounded retry on backpressure
            response = gateway.try_classify(encs[i], count=1)
            if response.ok:
                assert np.array_equal(
                    client.decrypt_response(response.scores, batch=1), want[i]
                )
                outcomes[i] = "ok"
                return
            if response.error.code == "RequestValidationError":
                assert i % 5 == 0, f"well-formed request {i} rejected at admission"
                outcomes[i] = "rejected"
                return
            assert response.error.retryable, response.error
            time.sleep(0.002)
        outcomes[i] = "starved"

    threads = [threading.Thread(target=submitter, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
        assert not t.is_alive(), "a submitter never got an answer"
    assert all(o is not None for o in outcomes)
    for i, outcome in enumerate(outcomes):
        if i % 5 == 0:
            assert outcome == "rejected"
        else:
            assert outcome in ("ok", "starved")
    assert outcomes.count("ok") >= n - n // 5 - 2  # at most a couple starved
    gateway.close()


# -- classify_with_retry against an overloaded cloud (stubbed) ------------------------


class _FlakyCloud:
    """Stub cloud: overloaded for the first *k* calls, then healthy."""

    def __init__(self, overloaded_calls: int, then: CloudResponse):
        self.overloaded_calls = overloaded_calls
        self.then = then
        self.calls = 0

    def try_classify(self, enc):
        self.calls += 1
        if self.calls <= self.overloaded_calls:
            return CloudResponse(
                ok=False,
                error=ServiceError(
                    "ServiceOverloadedError",
                    "overload",
                    True,
                    "service at capacity, retry with backoff",
                ),
            )
        return self.then


def _ok_response(backend, scores_shape=(10,)):
    handles = np.array(
        [backend.encrypt(np.array([0.1 * i])) for i in range(scores_shape[0])],
        dtype=object,
    )
    return CloudResponse(ok=True, scores=handles)


def test_retry_backs_off_through_overload(images):
    backend = _mock()
    client = Client(backend, SHAPE)
    cloud = _FlakyCloud(overloaded_calls=2, then=_ok_response(backend))
    t0 = time.perf_counter()
    logits = client.classify_with_retry(
        cloud, images[:1], max_attempts=3, backoff_seconds=0.02, jitter=0.0
    )
    elapsed = time.perf_counter() - t0
    assert logits.shape == (1, 10)
    assert cloud.calls == 3
    assert elapsed >= 0.02 + 0.04  # jitter off: exponential 20 ms then 40 ms


def test_retry_full_jitter_desynchronizes_clients(images):
    """Full jitter draws each backoff uniformly from [0, base]: two
    clients seeded differently must not sleep the same schedule (the
    lockstep herd is the failure mode jitter exists to break)."""
    backend = _mock()
    client = Client(backend, SHAPE)

    def sleeps(seed):
        cloud = _FlakyCloud(overloaded_calls=2, then=_ok_response(backend))
        recorded = []
        original = time.sleep
        try:
            time.sleep = recorded.append
            client.classify_with_retry(
                cloud, images[:1], max_attempts=3, backoff_seconds=0.5, seed=seed
            )
        finally:
            time.sleep = original
        return recorded

    a, b = sleeps(seed=1), sleeps(seed=2)
    assert a == sleeps(seed=1)  # seeded: reproducible
    assert a != b  # different seeds: desynchronized
    for delays in (a, b):
        for k, delay in enumerate(delays):
            assert 0.0 <= delay <= 0.5 * 2**k  # full jitter stays under base


def test_retry_max_elapsed_caps_total_backoff(images):
    """The client must give up before sleeping past its own deadline,
    surfacing the last sanitised error instead of hanging."""
    backend = _mock()
    client = Client(backend, SHAPE)
    cloud = _FlakyCloud(overloaded_calls=99, then=_ok_response(backend))
    t0 = time.perf_counter()
    with pytest.raises(ProtocolError) as info:
        client.classify_with_retry(
            cloud,
            images[:1],
            max_attempts=50,
            backoff_seconds=0.2,
            jitter=0.0,
            max_elapsed=0.25,
        )
    elapsed = time.perf_counter() - t0
    assert elapsed < 2.0  # nowhere near the 50-attempt schedule
    assert cloud.calls < 50
    assert info.value.error.category == "overload"


def test_retry_gives_up_after_max_attempts_of_overload(images):
    backend = _mock()
    client = Client(backend, SHAPE)
    cloud = _FlakyCloud(overloaded_calls=99, then=_ok_response(backend))
    with pytest.raises(ProtocolError) as info:
        client.classify_with_retry(cloud, images[:1], max_attempts=3)
    assert cloud.calls == 3
    assert info.value.error.category == "overload"


def test_retry_stops_immediately_on_non_retryable(images):
    backend = _mock()
    client = Client(backend, SHAPE)
    fatal = CloudResponse(
        ok=False,
        error=ServiceError(
            "RequestValidationError", "state", False, "request rejected at admission"
        ),
    )
    cloud = _FlakyCloud(overloaded_calls=0, then=fatal)
    with pytest.raises(ProtocolError) as info:
        client.classify_with_retry(cloud, images[:1], max_attempts=5)
    assert cloud.calls == 1, "non-retryable errors must not be retried"
    assert info.value.attempts == 1


def test_retry_against_real_overloaded_gateway(layers, images):
    """Integration: a genuinely backpressured gateway plus a backing-off
    client converge without manual coordination."""
    backend = _mock()
    client = Client(backend, SHAPE)
    gateway = BatchedCloudService(
        backend, layers, SHAPE, max_wait_ms=1.0, max_queue_depth=2
    )
    errors: list[BaseException] = []

    def worker():
        try:
            client.classify_with_retry(
                gateway, images[:1], max_attempts=8, backoff_seconds=0.01
            )
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert not errors, f"retrying clients failed: {errors!r}"
    gateway.close()
