"""Tiered overload shedding: policy ladder + scheduler integration."""

from __future__ import annotations

import time

import pytest

from repro.serving.errors import ServiceOverloadedError, ServiceShedError
from repro.serving.scheduler import BatchingScheduler
from repro.serving.shedding import SHED_TIERS, ShedPolicy


def test_tier_ladder_escalates_with_queue_fill():
    policy = ShedPolicy(defer_fill=0.5, reject_fill=0.8, shed_fill=1.0)
    assert policy.tier(0, 10) == "accept"
    assert policy.tier(4, 10) == "accept"
    assert policy.tier(5, 10) == "defer"
    assert policy.tier(8, 10) == "reject"
    assert policy.tier(10, 10) == "shed"


def test_saturation_advances_the_ladder():
    """A saturated pool sheds earlier than queue depth alone suggests —
    queue fill lags the actual overload when workers are the bottleneck."""
    policy = ShedPolicy(defer_fill=0.5, reject_fill=0.8, saturation_weight=0.5)
    assert policy.tier(4, 10, saturation=0.0) == "accept"
    assert policy.tier(4, 10, saturation=0.4) == "defer"  # 0.4 + 0.2 = 0.6
    assert policy.tier(4, 10, saturation=0.8) == "reject"  # 0.4 + 0.4 = 0.8
    assert policy.tier(8, 10, saturation=0.8) == "shed"  # 0.8 + 0.4 = 1.2


def test_saturation_weight_zero_ignores_pool():
    policy = ShedPolicy(saturation_weight=0.0)
    assert policy.tier(4, 10, saturation=1.0) == policy.tier(4, 10, saturation=0.0)


def test_policy_validates_threshold_order():
    with pytest.raises(ValueError):
        ShedPolicy(defer_fill=0.9, reject_fill=0.5)
    with pytest.raises(ValueError):
        ShedPolicy(saturation_weight=-0.1)
    with pytest.raises(ValueError):
        ShedPolicy(defer_deadline_s=0.0)


def test_tier_names_are_the_gauge_vocabulary():
    assert SHED_TIERS == ("accept", "defer", "reject", "shed")


# -- scheduler integration ---------------------------------------------------


def _echo(payloads, slots):
    return list(payloads)


def test_scheduler_reject_tier_raises_retryable_overload():
    sched = BatchingScheduler(
        _echo,
        max_batch_slots=4,
        max_queue_depth=10,
        shed_policy=ShedPolicy(defer_fill=0.0, reject_fill=0.2, shed_fill=0.9),
        start=False,  # worker idle: the queue only fills
    )
    futures = [sched.submit(i) for i in range(2)]  # fill 0, 0.1: defer tier
    with pytest.raises(ServiceOverloadedError):
        sched.submit("rejected")
    assert all(not f.done() for f in futures)
    sched.close(drain=False, timeout=1.0)


def test_scheduler_hard_shed_tier_is_not_retryable():
    sched = BatchingScheduler(
        _echo,
        max_batch_slots=4,
        max_queue_depth=10,
        shed_policy=ShedPolicy(defer_fill=0.0, reject_fill=0.15, shed_fill=0.2),
        start=False,
    )
    sched.submit("a")  # fill 0: defer
    sched.submit("b")  # fill 0.1: defer
    with pytest.raises(ServiceShedError):
        sched.submit("shed")  # fill 0.2: past the hard tier
    sched.close(drain=False, timeout=1.0)


def test_saturation_feeds_admission():
    sched = BatchingScheduler(
        _echo,
        max_batch_slots=4,
        max_queue_depth=10,
        shed_policy=ShedPolicy(defer_fill=0.2, reject_fill=0.4, saturation_weight=1.0),
        saturation_fn=lambda: 0.5,
        start=False,
    )
    # Queue empty, but the pool alone puts the load index at 0.5: reject.
    with pytest.raises(ServiceOverloadedError):
        sched.submit("x")
    sched.close(drain=False, timeout=1.0)


def test_broken_saturation_fn_fails_safe_toward_shedding():
    def sick():
        raise RuntimeError("pool gone")

    sched = BatchingScheduler(
        _echo,
        max_batch_slots=4,
        max_queue_depth=10,
        shed_policy=ShedPolicy(defer_fill=0.2, reject_fill=0.4, saturation_weight=1.0),
        saturation_fn=sick,
        start=False,
    )
    with pytest.raises(ServiceShedError):
        sched.submit("x")  # saturation reads as 1.0 -> the hard tier, not 0.0
    sched.close(drain=False, timeout=1.0)


def test_deferred_requests_expire_with_retryable_overload():
    """The defer tier's promise: evaluated soon, or told to retry —
    never parked past the shedding deadline."""
    sched = BatchingScheduler(
        _echo,
        max_batch_slots=4,
        max_queue_depth=10,
        max_wait_ms=5.0,
        shed_policy=ShedPolicy(
            defer_fill=0.0, reject_fill=0.9, defer_deadline_s=0.05
        ),
        start=False,
    )
    future = sched.submit("deferred")  # fill 0 with defer_fill 0: defer tier
    time.sleep(0.1)  # let the shedding deadline lapse before the worker runs
    sched._worker.start()
    with pytest.raises(ServiceOverloadedError):
        future.result(timeout=5.0)
    assert sched.stats()["requests_shed_expired"] == 1
    sched.close()


def test_without_policy_legacy_single_bound_behaviour():
    sched = BatchingScheduler(_echo, max_batch_slots=4, max_queue_depth=2, start=False)
    sched.submit("a")
    sched.submit("b")
    with pytest.raises(ServiceOverloadedError):
        sched.submit("c")
    assert sched.stats()["shed_tiers"] is False
    sched.close(drain=False, timeout=1.0)
