"""The serving cluster: pool lifecycle, failover, gateway integration.

The robustness acceptance of PR 7 lives here: a worker SIGKILLed
mid-batch must never drop a future — every submitted request resolves
with correct scores or a retryable error, the dead worker respawns, and
the survivors keep serving.  All assertions are count-based (deaths,
respawns, resolved futures), never timing-based.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.henn.backend import MockBackend
from repro.henn.layers import HeConv2d, HeFlatten, HeLinear, HePoly
from repro.henn.protocol import Client, ClusteredCloudService, CloudService
from repro.resilience import FaultInjector
from repro.serving.cluster import WorkerPool, _Job
from repro.serving.shedding import ShedPolicy

SHAPE = (1, 6, 6)


@pytest.fixture(scope="module")
def layers():
    rng = np.random.default_rng(0)
    return [
        HeConv2d(rng.normal(0, 0.4, (2, 1, 3, 3)), np.zeros(2), stride=2),
        HePoly([0.1, 0.5, 0.25]),
        HeFlatten(),
        HeLinear(rng.normal(0, 0.3, (10, 8)), np.zeros(10)),
    ]


@pytest.fixture(scope="module")
def images():
    return np.random.default_rng(1).uniform(0, 1, (8, 1, 6, 6))


def _mock():
    return MockBackend(batch=8, levels=6)


def _wait(predicate, timeout=20.0, interval=0.05):
    """Poll until *predicate* is truthy; the per-test watchdog still
    bounds the whole test, this just keeps assertions count-based."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


# -- gateway end to end ------------------------------------------------------


def test_cluster_scores_bit_identical_to_serial(layers, images):
    backend = _mock()
    client = Client(backend, SHAPE)
    serial = CloudService(backend, layers, SHAPE)
    encs = [client.encrypt_request(images[i : i + 1]) for i in range(4)]
    want = [client.decrypt_response(serial.classify_encrypted(e), batch=1) for e in encs]
    with ClusteredCloudService(
        backend, layers, SHAPE, workers=2, max_wait_ms=10.0
    ) as gateway:
        futures = [gateway.submit(e) for e in encs]
        responses = [f.result(timeout=60) for f in futures]
    for response, expected in zip(responses, want):
        assert response.ok, response.error
        got = client.decrypt_response(response.scores, batch=1)
        assert np.array_equal(got, expected)


def test_healthz_reports_pool_and_shed_tier(layers, images):
    backend = _mock()
    client = Client(backend, SHAPE)
    with ClusteredCloudService(
        backend, layers, SHAPE, workers=2, max_wait_ms=5.0
    ) as gateway:
        gateway.try_classify(client.encrypt_request(images[:1]))
        status = gateway._health()
        cluster = status["cluster"]
        assert cluster["size"] == 2
        assert cluster["ready"] == 2
        assert cluster["shed_tier"] in ("accept", "defer", "reject", "shed")
        assert cluster["degraded_serial"] is False
        states = {w["state"] for w in cluster["workers"]}
        assert states <= {"warming", "ready", "dead", "respawning"}
        assert all("health" in w and "inflight" in w for w in cluster["workers"])
        assert status["serving"]["shed_tiers"] is True  # ShedPolicy on by default


@pytest.mark.faults
def test_worker_killed_mid_batch_never_drops_a_future(layers, images):
    """Acceptance: SIGKILL one of the workers as it starts a batch; every
    submitted future still resolves (correct scores — the batch fails
    over to a survivor), the death is counted, and the dead worker
    respawns and reports ready again."""
    backend = _mock()
    client = Client(backend, SHAPE)
    serial = CloudService(backend, layers, SHAPE)
    injector = FaultInjector(seed=7).kill_cluster_worker(worker=0, on_batch=1)
    with ClusteredCloudService(
        backend,
        layers,
        SHAPE,
        workers=2,
        max_wait_ms=5.0,
        fault_injector=injector,
    ) as gateway:
        resolved = 0
        for i in range(6):
            enc = client.encrypt_request(images[i : i + 1])
            want = client.decrypt_response(serial.classify_encrypted(enc), batch=1)
            response = gateway.submit(enc).result(timeout=60)
            assert response.ok, response.error
            got = client.decrypt_response(response.scores, batch=1)
            assert np.array_equal(got, want)
            resolved += 1
        assert resolved == 6  # zero dropped futures
        stats = gateway.pool.stats()
        assert stats["deaths"] == 1
        assert injector.summary().get("cluster.kill") == 1
        # The dead worker comes back: both slots ready again.
        assert _wait(lambda: gateway.pool.stats()["ready"] == 2)
        assert gateway.pool.stats()["respawns"] == 1
        assert gateway.dispatcher.degraded is False


@pytest.mark.faults
def test_respawned_worker_serves_again(layers, images):
    """After the failover, the *respawned* worker must take traffic —
    counted via its per-worker batch counter, not timing."""
    backend = _mock()
    client = Client(backend, SHAPE)
    injector = FaultInjector(seed=3).kill_cluster_worker(worker=0, on_batch=1)
    with ClusteredCloudService(
        backend,
        layers,
        SHAPE,
        workers=1,  # single worker: respawn is the only way forward
        max_wait_ms=5.0,
        fault_injector=injector,
    ) as gateway:
        enc = client.encrypt_request(images[:1])
        response = gateway.submit(enc).result(timeout=60)
        assert response.ok, response.error  # served by the respawned generation
        worker = gateway.pool.stats()["workers"][0]
        assert worker["generation"] == 2
        assert worker["batches"] >= 1


# -- pool / dispatcher units -------------------------------------------------


def _trivial_engine_factory():
    class _Engine:
        def assemble_batch(self, requests, slots):
            return requests

        def run_encrypted(self, enc):
            return [np.asarray(r) * 2 for r in enc]

        def split_scores(self, scores, slots):
            return scores

    return _Engine()


def test_pool_health_weighted_acquire_prefers_idle_and_healthy():
    pool = WorkerPool(_trivial_engine_factory, size=3, max_inflight=2)
    try:
        pool.start()
        assert pool.wait_ready(timeout=30.0)
        # Load worker 0 and mark worker 1 faulty; worker 2 must win.
        pool.workers[0].inflight = {99: object()}
        pool.workers[1].faults = 2.0
        job = _Job(1, [], [1])
        chosen = pool.acquire(job)
        assert chosen is pool.workers[2]
        pool.release_without_send(chosen, job)
    finally:
        pool.close()


def test_pool_saturation_tracks_busy_fraction():
    pool = WorkerPool(_trivial_engine_factory, size=2, max_inflight=1)
    try:
        pool.start()
        assert pool.wait_ready(timeout=30.0)
        assert pool.saturation() == 0.0
        pool.workers[0].inflight = {1: object()}
        assert pool.saturation() == 0.5
        pool.workers[0].inflight = {}
    finally:
        pool.close()


def test_pool_rejects_bad_sizes():
    with pytest.raises(ValueError):
        WorkerPool(_trivial_engine_factory, size=0)
    with pytest.raises(ValueError):
        WorkerPool(_trivial_engine_factory, size=1, max_inflight=0)


def test_shed_policy_reaches_cluster_gateway(layers, images):
    """The cluster gateway's admission walks the tiered ladder: with a
    zero-capacity-style policy every submit sheds hard."""
    backend = _mock()
    client = Client(backend, SHAPE)
    with ClusteredCloudService(
        backend,
        layers,
        SHAPE,
        workers=1,
        shed_policy=ShedPolicy(defer_fill=0.0, reject_fill=0.0, shed_fill=0.0),
    ) as gateway:
        response = gateway.try_classify(client.encrypt_request(images[:1]))
        assert not response.ok
        assert response.error.code == "ServiceShedError"
        assert response.error.retryable is False
