"""Request tracing through the serving path: scheduler, gateway, cluster.

The distributed-tracing acceptance lives here: one sampled request
through the clustered gateway must yield a **single merged trace** with
stage attribution from the gateway process and spans from the worker
process that evaluated its batch — and with tracing off, the identical
traffic must record nothing at all.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.henn.backend import MockBackend
from repro.henn.layers import HeConv2d, HeFlatten, HeLinear, HePoly
from repro.henn.protocol import BatchedCloudService, Client, ClusteredCloudService
from repro.obs.rtrace import SamplingPolicy, TraceContext
from repro.serving.scheduler import BatchingScheduler

SHAPE = (1, 6, 6)


@pytest.fixture(scope="module")
def layers():
    rng = np.random.default_rng(0)
    return [
        HeConv2d(rng.normal(0, 0.4, (2, 1, 3, 3)), np.zeros(2), stride=2),
        HePoly([0.1, 0.5, 0.25]),
        HeFlatten(),
        HeLinear(rng.normal(0, 0.3, (10, 8)), np.zeros(10)),
    ]


@pytest.fixture(scope="module")
def images():
    return np.random.default_rng(1).uniform(0, 1, (4, 1, 6, 6))


def _wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


# -- scheduler stage attribution ---------------------------------------------


def test_scheduler_records_queue_wait_and_compute_stages():
    def echo(payloads, slots):
        return list(payloads)

    ctx = TraceContext("t-1", 1, sampled=True)
    with BatchingScheduler(echo, max_batch_slots=4, max_wait_ms=1.0) as sched:
        fut = sched.submit("payload", trace=ctx)
        assert fut.result(timeout=10) == "payload"
    stages = ctx.stages()
    assert "queue_wait" in stages and "compute" in stages
    by_name = {s.name: s for s in ctx.spans()}
    assert by_name["rtrace.compute"].tags["outcome"] == "ok"


def test_scheduler_labels_failed_batch_compute_stage():
    def boom(payloads, slots):
        raise RuntimeError("pool on fire")

    ctx = TraceContext("t-2", 2, sampled=True)
    with BatchingScheduler(boom, max_batch_slots=4, max_wait_ms=1.0) as sched:
        fut = sched.submit("payload", trace=ctx)
        with pytest.raises(RuntimeError):
            fut.result(timeout=10)
    by_name = {s.name: s for s in ctx.spans()}
    assert by_name["rtrace.compute"].tags["outcome"] == "error"


def test_scheduler_untraced_submit_records_nothing():
    def echo(payloads, slots):
        return list(payloads)

    with BatchingScheduler(echo, max_batch_slots=4, max_wait_ms=1.0) as sched:
        assert sched.submit("payload").result(timeout=10) == "payload"


# -- batched (single-process) gateway ----------------------------------------


def test_batched_gateway_traces_full_stage_breakdown(layers, images):
    backend = MockBackend(batch=8, levels=6)
    client = Client(backend, SHAPE)
    with BatchedCloudService(
        backend, layers, SHAPE, trace_policy=SamplingPolicy(rate=1.0, seed=3)
    ) as svc:
        enc = client.encrypt_request(images[:1])
        assert svc.try_classify(enc, count=1).ok
        assert _wait_for(lambda: len(svc.rtrace.store) == 1)
        record = svc.rtrace.store.recent()[0]
    assert record.outcome == "ok" and record.kept == "head"
    for stage in ("gateway", "queue_wait", "pack", "compute", "split"):
        assert stage in record.stages, stage
    # Single process: every span carries the gateway pid.
    assert len(record.pids) == 1


def test_rejected_request_is_tail_kept(layers, images):
    backend = MockBackend(batch=8, levels=6)
    with BatchedCloudService(
        backend, layers, SHAPE, trace_policy=SamplingPolicy(rate=1.0, seed=3)
    ) as svc:
        bad = np.asarray(images[:1])  # plaintext floats: fails validation
        response = svc.try_classify(bad, count=1)
        assert not response.ok
        record = svc.rtrace.store.recent()[0]
    assert record.outcome == "rejected"
    assert record.error_code == "RequestValidationError"


def test_disabled_tracing_stores_nothing(layers, images):
    backend = MockBackend(batch=8, levels=6)
    client = Client(backend, SHAPE)
    with BatchedCloudService(backend, layers, SHAPE) as svc:
        enc = client.encrypt_request(images[:1])
        assert svc.try_classify(enc, count=1).ok
        assert len(svc.rtrace.store) == 0


# -- clustered gateway: the cross-process merge -------------------------------


def test_sampled_cluster_request_yields_single_merged_trace(layers, images):
    backend = MockBackend(batch=8, levels=6)
    client = Client(backend, SHAPE)
    svc = ClusteredCloudService(
        backend,
        layers,
        SHAPE,
        workers=2,
        trace_policy=SamplingPolicy(rate=1.0, seed=3),
    )
    try:
        enc = client.encrypt_request(images[:1])
        assert svc.try_classify(enc, count=1).ok
        assert _wait_for(lambda: len(svc.rtrace.store) == 1)
        record = svc.rtrace.store.recent()[0]
    finally:
        svc.close()
    # One trace, stages from the gateway, spans from both processes.
    assert record.outcome == "ok"
    assert {"gateway", "queue_wait", "compute"} <= set(record.stages)
    assert len(record.pids) >= 2
    names = {s.name for s in record.spans}
    assert {"rtrace.worker.pack", "rtrace.worker.evaluate", "rtrace.worker.split"} <= names
    # The engine's own spans came home with the batch.
    assert any(n.startswith("henn.") for n in names)
    # Every parent link resolves inside the merged trace (two-pass remap).
    ids = {s.span_id for s in record.spans}
    assert all(s.parent_id is None or s.parent_id in ids for s in record.spans)


def test_unsampled_cluster_request_ships_no_spans(layers, images):
    backend = MockBackend(batch=8, levels=6)
    client = Client(backend, SHAPE)
    svc = ClusteredCloudService(backend, layers, SHAPE, workers=2)
    try:
        enc = client.encrypt_request(images[:1])
        assert svc.try_classify(enc, count=1).ok
        assert len(svc.rtrace.store) == 0
    finally:
        svc.close()
