"""BatchingScheduler: coalescing policy, backpressure, future safety."""

from __future__ import annotations

import threading
import time

import pytest

from concurrent.futures import Future

from repro.obs.metrics import MetricsRegistry, set_registry
from repro.serving import (
    BatchingScheduler,
    DrainTimeoutError,
    SchedulerClosedError,
    ServiceOverloadedError,
)


@pytest.fixture(autouse=True)
def fresh_registry():
    reg = MetricsRegistry()
    set_registry(reg)
    yield reg
    set_registry(MetricsRegistry())


def echo_batch(payloads, slots):
    return [(p, s) for p, s in zip(payloads, slots)]


def test_coalesces_queued_requests_into_one_batch():
    fired = []

    def process(payloads, slots):
        fired.append((list(payloads), list(slots)))
        return payloads

    sched = BatchingScheduler(process, max_batch_slots=8, max_wait_ms=50.0, start=False)
    futures = [sched.submit(i, slots=2) for i in range(4)]
    sched._worker.start()
    assert [f.result(timeout=10) for f in futures] == [0, 1, 2, 3]
    # all four fit the 8-slot budget -> exactly one batch
    assert fired == [([0, 1, 2, 3], [2, 2, 2, 2])]
    sched.close()


def test_fires_early_when_next_request_does_not_fit():
    fired = []

    def process(payloads, slots):
        fired.append(sum(slots))
        return payloads

    sched = BatchingScheduler(process, max_batch_slots=4, max_wait_ms=60_000.0, start=False)
    first, second = [sched.submit(i, slots=3) for i in range(2)]
    sched._worker.start()
    # the second request (3 slots) cannot join the first (3 of 4 slots
    # used): the batch must fire *now*, 60 s deadline notwithstanding
    assert first.result(timeout=10) == 0
    # ... while the leftover request keeps waiting for batchmates until
    # its own deadline; a draining close flushes it
    assert not second.done()
    sched.close(drain=True)
    assert second.result(timeout=1) == 1
    assert fired == [3, 3]


def test_deadline_fires_partial_batch():
    with BatchingScheduler(echo_batch, max_batch_slots=64, max_wait_ms=10.0) as sched:
        assert sched.submit("only", slots=1).result(timeout=10) == ("only", 1)
        assert sched.stats()["batches"] == 1


def test_submit_validates_slots():
    with BatchingScheduler(echo_batch, max_batch_slots=4) as sched:
        with pytest.raises(ValueError):
            sched.submit("x", slots=0)
        with pytest.raises(ValueError):
            sched.submit("x", slots=5)


def test_backpressure_rejects_when_queue_full(fresh_registry):
    sched = BatchingScheduler(
        echo_batch, max_batch_slots=4, max_queue_depth=2, start=False
    )
    sched.submit("a")
    sched.submit("b")
    with pytest.raises(ServiceOverloadedError):
        sched.submit("c")
    assert sched.stats()["requests_rejected"] == 1
    assert (
        fresh_registry.counter("serving.requests", {"outcome": "rejected"}).value == 1
    )
    sched.close(drain=False)


def test_per_request_error_isolation():
    def process(payloads, slots):
        return [RuntimeError("boom") if p == "bad" else p for p in payloads]

    with BatchingScheduler(process, max_batch_slots=8, max_wait_ms=5.0) as sched:
        good = sched.submit("good")
        bad = sched.submit("bad")
        assert good.result(timeout=10) == "good"
        with pytest.raises(RuntimeError):
            bad.result(timeout=10)


def test_batch_wide_exception_fails_every_future():
    def process(payloads, slots):
        raise ValueError("batch fault")

    with BatchingScheduler(process, max_batch_slots=8, max_wait_ms=5.0) as sched:
        futures = [sched.submit(i) for i in range(3)]
        for f in futures:
            with pytest.raises(ValueError):
                f.result(timeout=10)
    # the worker survives a faulting batch
    assert sched.stats()["batches"] >= 1


def test_result_length_mismatch_is_an_error_not_a_hang():
    with BatchingScheduler(
        lambda p, s: [], max_batch_slots=8, max_wait_ms=5.0
    ) as sched:
        future = sched.submit("x")
        with pytest.raises(RuntimeError, match="results"):
            future.result(timeout=10)


def test_close_drains_pending_requests():
    sched = BatchingScheduler(echo_batch, max_batch_slots=2, max_wait_ms=60_000.0, start=False)
    futures = [sched.submit(i) for i in range(5)]
    sched._worker.start()
    sched.close(drain=True)
    assert [f.result(timeout=1)[0] for f in futures] == [0, 1, 2, 3, 4]


def test_close_without_drain_fails_pending():
    sched = BatchingScheduler(echo_batch, max_batch_slots=2, start=False)
    future = sched.submit("pending")
    sched.close(drain=False)
    with pytest.raises(SchedulerClosedError):
        future.result(timeout=1)
    with pytest.raises(SchedulerClosedError):
        sched.submit("late")


def test_cancelled_future_is_skipped():
    sched = BatchingScheduler(echo_batch, max_batch_slots=2, max_wait_ms=30.0, start=False)
    cancelled = sched.submit("a")
    live = sched.submit("b")
    assert cancelled.cancel()
    sched._worker.start()
    assert live.result(timeout=10) == ("b", 1)
    sched.close()


def test_telemetry_and_stats(fresh_registry):
    with BatchingScheduler(echo_batch, max_batch_slots=4, max_wait_ms=5.0, start=False) as sched:
        futures = [sched.submit(i) for i in range(4)]
        sched._worker.start()
        [f.result(timeout=10) for f in futures]
        stats = sched.stats()
        assert stats["requests_completed"] == 4
        assert stats["batches"] == 1
        assert stats["mean_batch_size"] == 4.0
        assert stats["last_slot_utilization"] == 1.0
        assert fresh_registry.histogram("serving.batch.size").count == 1
        assert fresh_registry.histogram("serving.batch.wait_seconds").count == 4
        assert (
            fresh_registry.histogram(
                "serving.batch.compute_seconds", {"outcome": "ok"}
            ).count
            == 1
        )
        assert fresh_registry.gauge("serving.slot_utilization").value == 1.0


@pytest.mark.faults
def test_concurrent_submitters_never_drop_a_future():
    """Hammer admission from many threads through faults, rejections and
    a mid-run close: every accepted future must resolve."""

    def process(payloads, slots):
        # deterministic per-request outcome: multiples of 7 fail alone
        return [
            RuntimeError(f"poison {p}") if p % 7 == 0 else p * 2 for p in payloads
        ]

    sched = BatchingScheduler(
        process, max_batch_slots=8, max_wait_ms=1.0, max_queue_depth=16
    )
    outcomes: list[tuple[int, str]] = []
    lock = threading.Lock()

    def submitter(base):
        for i in range(25):
            rid = base * 1000 + i
            try:
                future = sched.submit(rid)
            except ServiceOverloadedError:
                with lock:
                    outcomes.append((rid, "rejected"))
                continue
            except SchedulerClosedError:
                with lock:
                    outcomes.append((rid, "closed"))
                continue
            try:
                result = future.result(timeout=30)
                assert result == rid * 2
                with lock:
                    outcomes.append((rid, "ok"))
            except RuntimeError:
                assert rid % 7 == 0
                with lock:
                    outcomes.append((rid, "poisoned"))

    threads = [threading.Thread(target=submitter, args=(b,)) for b in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
        assert not t.is_alive(), "submitter wedged: a future was dropped"
    sched.close()
    # every single request got exactly one outcome
    assert len(outcomes) == 8 * 25
    counted = {kind for _, kind in outcomes}
    assert "ok" in counted and "poisoned" in counted
    stats = sched.stats()
    assert stats["queue_depth"] == 0
    assert stats["requests_completed"] + stats["requests_rejected"] >= len(
        [o for o in outcomes if o[1] != "closed"]
    )


# -- bounded drain: no future ever hangs past close(timeout=...) --------------


def test_drain_timeout_fails_stranded_pipelined_batch_retryable():
    """Regression (PR 7): a pipelined batch whose dispatcher future never
    completes — a wedged worker pool — must not hang close(drain=True);
    past the timeout every future fails with the retryable
    DrainTimeoutError."""
    stuck: list[Future] = []

    def never_completes(payloads, slots):
        fut: Future = Future()
        stuck.append(fut)
        return fut

    sched = BatchingScheduler(never_completes, max_batch_slots=4, max_wait_ms=0.0)
    futures = [sched.submit(i) for i in range(3)]
    t0 = time.perf_counter()
    sched.close(drain=True, timeout=0.3)
    assert time.perf_counter() - t0 < 5.0  # bounded, not a hang
    for future in futures:
        with pytest.raises(DrainTimeoutError):
            future.result(timeout=1.0)


def test_drain_timeout_fails_stuck_sync_callback_futures():
    """Same guarantee when the batch is stuck *inside* a synchronous
    process_batch call rather than parked with a dispatcher."""
    release = threading.Event()

    def stuck_callback(payloads, slots):
        release.wait(timeout=10.0)
        return list(payloads)

    sched = BatchingScheduler(stuck_callback, max_batch_slots=4, max_wait_ms=0.0)
    future = sched.submit("wedged")
    t0 = time.perf_counter()
    sched.close(drain=True, timeout=0.3)
    assert time.perf_counter() - t0 < 5.0
    with pytest.raises(DrainTimeoutError):
        future.result(timeout=1.0)
    release.set()  # unblock the worker thread for teardown


def test_drain_completes_within_timeout_resolves_normally():
    """The timeout is a bound, not a delay: a healthy dispatcher that
    answers promptly drains every future with its real result."""
    def prompt_dispatch(payloads, slots):
        fut: Future = Future()
        threading.Timer(0.02, fut.set_result, args=([p * 2 for p in payloads],)).start()
        return fut

    sched = BatchingScheduler(prompt_dispatch, max_batch_slots=4, max_wait_ms=0.0)
    futures = [sched.submit(i) for i in range(3)]
    sched.close(drain=True, timeout=30.0)
    assert [f.result(timeout=1.0) for f in futures] == [0, 2, 4]


def test_abort_close_fails_inflight_pipelined_batches():
    """drain=False must resolve batches already handed to a dispatcher,
    not just the queued ones."""
    def never_completes(payloads, slots):
        return Future()

    sched = BatchingScheduler(never_completes, max_batch_slots=4, max_wait_ms=0.0)
    future = sched.submit("inflight")
    # Wait until the batch is with the "dispatcher" (pipelined inflight).
    deadline = time.monotonic() + 5.0
    while sched.stats()["inflight_batches"] == 0 and time.monotonic() < deadline:
        time.sleep(0.01)
    assert sched.stats()["inflight_batches"] == 1
    sched.close(drain=False, timeout=1.0)
    with pytest.raises(SchedulerClosedError):
        future.result(timeout=1.0)


def test_pipelined_batches_overlap_across_dispatch():
    """Pipelined mode is what keeps N workers busy: with a dispatcher
    that parks futures, multiple batches must be in flight at once."""
    parked: list[tuple[Future, list]] = []

    def park(payloads, slots):
        fut: Future = Future()
        parked.append((fut, payloads))
        return fut

    sched = BatchingScheduler(park, max_batch_slots=1, max_wait_ms=0.0)
    futures = [sched.submit(i) for i in range(3)]
    deadline = time.monotonic() + 5.0
    while len(parked) < 3 and time.monotonic() < deadline:
        time.sleep(0.01)
    assert len(parked) == 3  # fired without waiting for each other
    for fut, payloads in parked:
        fut.set_result([p * 10 for p in payloads])
    assert sorted(f.result(timeout=5.0) for f in futures) == [0, 10, 20]
    sched.close()
