"""Slot packing: native mock concatenation and structural memberwise packing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ckks import CkksParams
from repro.ckksrns import CkksRnsParams
from repro.henn.backend import CkksBackend, CkksRnsBackend, HeBackend, MockBackend
from repro.serving import MemberwiseBackend, PackedHandle, serving_backend_for


def _rns_backend():
    return CkksRnsBackend(
        CkksRnsParams(
            n=128, moduli_bits=(36, 26, 26, 26, 26), scale_bits=26, special_bits=45, hw=16
        ),
        seed=0,
    )


# -- native concatenation on the mock backend ----------------------------------------


def test_mock_concat_and_slice_roundtrip():
    backend = MockBackend(batch=8, levels=4)
    a = backend.encrypt(np.array([1.0, 2.0]))
    b = backend.encrypt(np.array([3.0]))
    packed = backend.concat_slots([a, b], [2, 1])
    assert np.array_equal(backend.decrypt(packed, count=3), [1.0, 2.0, 3.0])
    assert np.array_equal(backend.decrypt(backend.slice_slots(packed, 0, 2), count=2), [1.0, 2.0])
    assert np.array_equal(backend.decrypt(backend.slice_slots(packed, 2, 1), count=1), [3.0])


def test_mock_concat_is_bit_exact():
    backend = MockBackend(batch=8, levels=4)
    xs = [np.array([0.1, 0.2]), np.array([0.3])]
    handles = [backend.encrypt(x) for x in xs]
    packed = backend.concat_slots(handles, [2, 1])
    # serial evaluation of each member vs sliced evaluation of the pack
    serial = [backend.square(backend.rescale(h)) for h in handles]
    batched = backend.square(backend.rescale(packed))
    for i, (s, count) in enumerate(zip(serial, [2, 1])):
        got = backend.decrypt(
            backend.slice_slots(batched, 0 if i == 0 else 2, count), count=count
        )
        assert np.array_equal(got, backend.decrypt(s, count=count))


def test_mock_concat_rejects_mixed_levels_and_scales():
    backend = MockBackend(batch=8, levels=4)
    a = backend.encrypt(np.array([1.0]))
    b = backend.rescale(backend.square(backend.encrypt(np.array([2.0]))))
    with pytest.raises(ValueError):
        backend.concat_slots([a, b], [1, 1])


def test_mock_concat_rejects_capacity_overflow():
    backend = MockBackend(batch=2, levels=4)
    handles = [backend.encrypt(np.array([float(i)])) for i in range(3)]
    with pytest.raises(ValueError):
        backend.concat_slots(handles, [1, 1, 1])


def test_mock_slice_bounds_checked():
    backend = MockBackend(batch=4, levels=4)
    packed = backend.encrypt(np.array([1.0, 2.0]))
    with pytest.raises(ValueError):
        backend.slice_slots(packed, 1, 4)


def test_base_backend_has_no_native_concat():
    assert HeBackend.native_slot_concat is False
    assert MockBackend.native_slot_concat is True
    assert CkksBackend.native_slot_concat is False
    assert CkksRnsBackend.native_slot_concat is False


# -- strategy selection --------------------------------------------------------------


def test_serving_backend_for_picks_strategy():
    mock = MockBackend(batch=4, levels=3)
    assert serving_backend_for(mock) is mock
    rns = _rns_backend()
    wrapped = serving_backend_for(rns)
    assert isinstance(wrapped, MemberwiseBackend)
    assert wrapped.inner is rns
    # idempotent: a serving-capable backend is never double-wrapped
    assert serving_backend_for(wrapped) is wrapped
    with pytest.raises(TypeError):
        MemberwiseBackend(wrapped)


# -- structural packing --------------------------------------------------------------


def test_memberwise_ops_are_bit_identical_to_serial():
    inner = _rns_backend()
    packed_backend = MemberwiseBackend(inner)
    xs = [np.array([0.5, -0.25]), np.array([0.125])]
    handles = [inner.encrypt(x) for x in xs]
    packed = packed_backend.concat_slots(handles, [2, 1])
    assert isinstance(packed, PackedHandle)

    # identical instruction streams: square -> rescale -> scalar mul
    def program(b, h):
        return b.mul_plain_scalar(b.rescale(b.square(h)), 0.5)

    serial = [program(inner, h) for h in handles]
    batched = program(packed_backend, packed)
    got = packed_backend.decrypt(batched, count=3)
    want = np.concatenate(
        [inner.decrypt(s, count=c) for s, c in zip(serial, [2, 1])]
    )
    assert np.array_equal(got, want)


def test_memberwise_weighted_sum_matches_serial():
    inner = _rns_backend()
    backend = MemberwiseBackend(inner)
    weights = np.array([0.25, -0.5, 1.0])
    members = [[inner.encrypt(np.array([float(i + j)])) for j in range(3)] for i in range(2)]
    packs = [
        backend.concat_slots([members[0][j], members[1][j]], [1, 1]) for j in range(3)
    ]
    serial = [inner.weighted_sum(members[i], weights) for i in range(2)]
    batched = backend.weighted_sum(packs, weights)
    assert np.array_equal(
        backend.decrypt(batched, count=2),
        np.concatenate([inner.decrypt(s, count=1) for s in serial]),
    )


def test_memberwise_mul_plain_vector_routes_slot_ranges():
    backend = MemberwiseBackend(MockBackend(batch=8, levels=4))
    inner = backend.inner
    a = inner.encrypt(np.array([1.0, 1.0]))
    b = inner.encrypt(np.array([1.0]))
    packed = backend.concat_slots([a, b], [2, 1])
    out = backend.mul_plain_vector(packed, np.array([2.0, 3.0, 4.0]))
    got = backend.decrypt(backend.rescale(out), count=3)
    assert np.allclose(got, [2.0, 3.0, 4.0], atol=1e-6)


def test_memberwise_slice_only_at_member_boundaries():
    backend = MemberwiseBackend(MockBackend(batch=8, levels=4))
    inner = backend.inner
    packed = backend.concat_slots(
        [inner.encrypt(np.array([1.0, 2.0])), inner.encrypt(np.array([3.0]))], [2, 1]
    )
    member = backend.slice_slots(packed, 2, 1)
    assert np.array_equal(inner.decrypt(member, count=1), [3.0])
    with pytest.raises(ValueError):
        backend.slice_slots(packed, 1, 2)


def test_memberwise_guards():
    backend = MemberwiseBackend(MockBackend(batch=4, levels=3))
    raw = backend.inner.encrypt(np.array([1.0]))
    with pytest.raises(TypeError):
        backend.square(raw)
    packed = backend.concat_slots([raw], [1])
    with pytest.raises(NotImplementedError):
        backend.rotate(packed, 1)
    # attribute fallthrough keeps introspection working
    assert backend.levels == backend.inner.levels
    assert backend.name.startswith("packed+")


def test_memberwise_ckks_end_to_end_matches_serial():
    inner = CkksBackend(CkksParams(n=128, levels=5, scale_bits=24), seed=0)
    backend = MemberwiseBackend(inner)
    handles = [inner.encrypt(np.array([0.3])), inner.encrypt(np.array([-0.7]))]
    packed = backend.concat_slots(handles, [1, 1])
    serial = [inner.add_plain(inner.rescale(inner.square(h)), 0.25) for h in handles]
    batched = backend.add_plain(backend.rescale(backend.square(packed)), 0.25)
    assert np.array_equal(
        backend.decrypt(batched, count=2),
        np.concatenate([inner.decrypt(s, count=1) for s in serial]),
    )
