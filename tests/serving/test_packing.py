"""Slot packing: native mock, lane-stacked SIMD, and memberwise packing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ckks import CkksParams
from repro.ckksrns import CkksRnsParams
from repro.henn.backend import CkksBackend, CkksRnsBackend, HeBackend, MockBackend
from repro.henn.inference import HeInferenceEngine
from repro.henn.layers import HeConv2d, HeFlatten, HeLinear, HePoly
from repro.henn.packing import BatchLayout
from repro.henn.protocol import BatchedCloudService, Client, CloudService
from repro.obs.metrics import get_registry
from repro.serving import (
    LaneHandle,
    LaneSliceError,
    MemberwiseBackend,
    PackedHandle,
    PackingError,
    PackingNestingError,
    ServingError,
    SlotPackedBackend,
    serving_backend_for,
)


def _rns_backend():
    return CkksRnsBackend(
        CkksRnsParams(
            n=128, moduli_bits=(36, 26, 26, 26, 26), scale_bits=26, special_bits=45, hw=16
        ),
        seed=0,
    )


# -- native concatenation on the mock backend ----------------------------------------


def test_mock_concat_and_slice_roundtrip():
    backend = MockBackend(batch=8, levels=4)
    a = backend.encrypt(np.array([1.0, 2.0]))
    b = backend.encrypt(np.array([3.0]))
    packed = backend.concat_slots([a, b], [2, 1])
    assert np.array_equal(backend.decrypt(packed, count=3), [1.0, 2.0, 3.0])
    assert np.array_equal(backend.decrypt(backend.slice_slots(packed, 0, 2), count=2), [1.0, 2.0])
    assert np.array_equal(backend.decrypt(backend.slice_slots(packed, 2, 1), count=1), [3.0])


def test_mock_concat_is_bit_exact():
    backend = MockBackend(batch=8, levels=4)
    xs = [np.array([0.1, 0.2]), np.array([0.3])]
    handles = [backend.encrypt(x) for x in xs]
    packed = backend.concat_slots(handles, [2, 1])
    # serial evaluation of each member vs sliced evaluation of the pack
    serial = [backend.square(backend.rescale(h)) for h in handles]
    batched = backend.square(backend.rescale(packed))
    for i, (s, count) in enumerate(zip(serial, [2, 1])):
        got = backend.decrypt(
            backend.slice_slots(batched, 0 if i == 0 else 2, count), count=count
        )
        assert np.array_equal(got, backend.decrypt(s, count=count))


def test_mock_concat_rejects_mixed_levels_and_scales():
    backend = MockBackend(batch=8, levels=4)
    a = backend.encrypt(np.array([1.0]))
    b = backend.rescale(backend.square(backend.encrypt(np.array([2.0]))))
    with pytest.raises(ValueError):
        backend.concat_slots([a, b], [1, 1])


def test_mock_concat_rejects_capacity_overflow():
    backend = MockBackend(batch=2, levels=4)
    handles = [backend.encrypt(np.array([float(i)])) for i in range(3)]
    with pytest.raises(ValueError):
        backend.concat_slots(handles, [1, 1, 1])


def test_mock_slice_bounds_checked():
    backend = MockBackend(batch=4, levels=4)
    packed = backend.encrypt(np.array([1.0, 2.0]))
    with pytest.raises(ValueError):
        backend.slice_slots(packed, 1, 4)


def test_base_backend_has_no_native_concat():
    assert HeBackend.native_slot_concat is False
    assert MockBackend.native_slot_concat is True
    assert CkksBackend.native_slot_concat is False
    assert CkksRnsBackend.native_slot_concat is False


# -- strategy selection --------------------------------------------------------------


def test_serving_backend_for_picks_strategy():
    mock = MockBackend(batch=4, levels=3)
    assert serving_backend_for(mock) is mock
    rns = _rns_backend()
    wrapped = serving_backend_for(rns)
    # the real schemes get genuine lane packing, not memberwise fan-out
    assert isinstance(wrapped, SlotPackedBackend)
    assert wrapped.inner is rns
    ckks = CkksBackend(CkksParams(n=128, levels=5, scale_bits=24), seed=0)
    assert isinstance(serving_backend_for(ckks), SlotPackedBackend)
    # packed backends are terminal: re-wrapping is a typed serving error
    with pytest.raises(PackingNestingError):
        serving_backend_for(wrapped)
    with pytest.raises(PackingNestingError):
        MemberwiseBackend(wrapped)
    with pytest.raises(PackingNestingError):
        SlotPackedBackend(wrapped)
    # the old TypeError contract survives through dual inheritance
    assert issubclass(PackingNestingError, TypeError)
    # no lane adapter for value-vector handles: mock is already native
    with pytest.raises(PackingError):
        SlotPackedBackend(MockBackend(batch=4, levels=3))


def test_batch_layout_pad_accounting():
    layout = BatchLayout((3,), 8)
    assert layout.lanes == 1
    assert layout.total == 3
    assert layout.padded_total == 4  # next power of two
    assert layout.pad_slots == 1
    assert layout.offsets == (0,)
    aligned = BatchLayout((4, 4), 8)
    assert aligned.pad_slots == 0
    assert np.array_equal(aligned.lane_mask(1), [False] * 4 + [True] * 4)
    assert aligned.lane_for_range(4, 4) == 1
    with pytest.raises(ValueError):
        BatchLayout((5, 4), 8)  # capacity overflow
    with pytest.raises(ValueError):
        BatchLayout((), 8)
    with pytest.raises(IndexError):
        layout.lane_slice(1)
    # the pad-waste counters feed /healthz and obs.render_report
    reg = get_registry()
    before = reg.counter("serving.pack.pad_slots").value
    layout.record(reg)
    assert reg.counter("serving.pack.pad_slots").value == before + 1
    assert np.array_equal(layout.pad_values(np.array([1.0, 2.0, 3.0])), [1, 2, 3, 0])


# -- structural packing --------------------------------------------------------------


def test_memberwise_ops_are_bit_identical_to_serial():
    inner = _rns_backend()
    packed_backend = MemberwiseBackend(inner)
    xs = [np.array([0.5, -0.25]), np.array([0.125])]
    handles = [inner.encrypt(x) for x in xs]
    packed = packed_backend.concat_slots(handles, [2, 1])
    assert isinstance(packed, PackedHandle)

    # identical instruction streams: square -> rescale -> scalar mul
    def program(b, h):
        return b.mul_plain_scalar(b.rescale(b.square(h)), 0.5)

    serial = [program(inner, h) for h in handles]
    batched = program(packed_backend, packed)
    got = packed_backend.decrypt(batched, count=3)
    want = np.concatenate(
        [inner.decrypt(s, count=c) for s, c in zip(serial, [2, 1])]
    )
    assert np.array_equal(got, want)


def test_memberwise_weighted_sum_matches_serial():
    inner = _rns_backend()
    backend = MemberwiseBackend(inner)
    weights = np.array([0.25, -0.5, 1.0])
    members = [[inner.encrypt(np.array([float(i + j)])) for j in range(3)] for i in range(2)]
    packs = [
        backend.concat_slots([members[0][j], members[1][j]], [1, 1]) for j in range(3)
    ]
    serial = [inner.weighted_sum(members[i], weights) for i in range(2)]
    batched = backend.weighted_sum(packs, weights)
    assert np.array_equal(
        backend.decrypt(batched, count=2),
        np.concatenate([inner.decrypt(s, count=1) for s in serial]),
    )


def test_memberwise_mul_plain_vector_routes_slot_ranges():
    backend = MemberwiseBackend(MockBackend(batch=8, levels=4))
    inner = backend.inner
    a = inner.encrypt(np.array([1.0, 1.0]))
    b = inner.encrypt(np.array([1.0]))
    packed = backend.concat_slots([a, b], [2, 1])
    out = backend.mul_plain_vector(packed, np.array([2.0, 3.0, 4.0]))
    got = backend.decrypt(backend.rescale(out), count=3)
    assert np.allclose(got, [2.0, 3.0, 4.0], atol=1e-6)


def test_memberwise_slice_only_at_member_boundaries():
    backend = MemberwiseBackend(MockBackend(batch=8, levels=4))
    inner = backend.inner
    packed = backend.concat_slots(
        [inner.encrypt(np.array([1.0, 2.0])), inner.encrypt(np.array([3.0]))], [2, 1]
    )
    member = backend.slice_slots(packed, 2, 1)
    assert np.array_equal(inner.decrypt(member, count=1), [3.0])
    with pytest.raises(ValueError):
        backend.slice_slots(packed, 1, 2)


def test_memberwise_guards():
    backend = MemberwiseBackend(MockBackend(batch=4, levels=3))
    raw = backend.inner.encrypt(np.array([1.0]))
    with pytest.raises(TypeError):
        backend.square(raw)
    packed = backend.concat_slots([raw], [1])
    with pytest.raises(NotImplementedError):
        backend.rotate(packed, 1)
    # attribute fallthrough keeps introspection working
    assert backend.levels == backend.inner.levels
    assert backend.name.startswith("packed+")


def test_memberwise_ckks_end_to_end_matches_serial():
    inner = CkksBackend(CkksParams(n=128, levels=5, scale_bits=24), seed=0)
    backend = MemberwiseBackend(inner)
    handles = [inner.encrypt(np.array([0.3])), inner.encrypt(np.array([-0.7]))]
    packed = backend.concat_slots(handles, [1, 1])
    serial = [inner.add_plain(inner.rescale(inner.square(h)), 0.25) for h in handles]
    batched = backend.add_plain(backend.rescale(backend.square(packed)), 0.25)
    assert np.array_equal(
        backend.decrypt(batched, count=2),
        np.concatenate([inner.decrypt(s, count=1) for s in serial]),
    )


# -- lane-stacked SIMD packing (SlotPackedBackend) ------------------------------------


def test_slotpacked_rns_ops_bit_identical_to_serial():
    inner = _rns_backend()
    backend = SlotPackedBackend(inner)
    xs = [np.array([0.5, -0.25]), np.array([0.125])]
    handles = [inner.encrypt(x) for x in xs]
    packed = backend.concat_slots(handles, [2, 1])
    assert isinstance(packed, LaneHandle)
    # one stacked ciphertext, (k, lanes, n) residue components
    assert packed.ct.c0.ndim == 3 and packed.ct.c0.shape[1] == 2

    # identical instruction streams: square -> rescale -> scalar mul
    def program(b, h):
        return b.mul_plain_scalar(b.rescale(b.square(h)), 0.5)

    serial = [program(inner, h) for h in handles]
    batched = program(backend, packed)
    got = backend.decrypt(batched, count=3)
    want = np.concatenate([inner.decrypt(s, count=c) for s, c in zip(serial, [2, 1])])
    assert np.array_equal(got, want)


def test_slotpacked_ckks_ops_bit_identical_to_serial():
    inner = CkksBackend(CkksParams(n=128, levels=5, scale_bits=24), seed=0)
    backend = SlotPackedBackend(inner)
    handles = [inner.encrypt(np.array([0.3])), inner.encrypt(np.array([-0.7]))]
    packed = backend.concat_slots(handles, [1, 1])
    serial = [inner.add_plain(inner.rescale(inner.square(h)), 0.25) for h in handles]
    batched = backend.add_plain(backend.rescale(backend.square(packed)), 0.25)
    assert np.array_equal(
        backend.decrypt(batched, count=2),
        np.concatenate([inner.decrypt(s, count=1) for s in serial]),
    )


def test_slotpacked_weighted_sum_matches_serial():
    inner = _rns_backend()
    backend = SlotPackedBackend(inner)
    weights = np.array([0.25, -0.5, 1.0])
    members = [[inner.encrypt(np.array([float(i + j)])) for j in range(3)] for i in range(2)]
    packs = [
        backend.concat_slots([members[0][j], members[1][j]], [1, 1]) for j in range(3)
    ]
    serial = [inner.weighted_sum(members[i], weights) for i in range(2)]
    batched = backend.weighted_sum(packs, weights)
    assert np.array_equal(
        backend.decrypt(batched, count=2),
        np.concatenate([inner.decrypt(s, count=1) for s in serial]),
    )


def test_slotpacked_slice_is_typed_serving_error():
    inner = _rns_backend()
    backend = SlotPackedBackend(inner)
    packed = backend.concat_slots(
        [inner.encrypt(np.array([1.0, 2.0])), inner.encrypt(np.array([3.0]))], [2, 1]
    )
    # a round trip at a member boundary works
    member = backend.slice_slots(packed, 2, 1)
    assert np.array_equal(inner.decrypt(member, count=1), inner.decrypt(
        backend.slice_slots(packed, 2, 1), count=1
    ))
    # off-boundary and out-of-range slices raise the typed serving error,
    # which is also a ValueError for legacy callers
    with pytest.raises(LaneSliceError):
        backend.slice_slots(packed, 1, 2)
    with pytest.raises(LaneSliceError):
        backend.slice_slots(packed, 7, 1)
    assert issubclass(LaneSliceError, ValueError)
    assert issubclass(LaneSliceError, ServingError)


def test_slotpacked_guards():
    inner = _rns_backend()
    backend = SlotPackedBackend(inner)
    raw = inner.encrypt(np.array([1.0]))
    with pytest.raises(TypeError):
        backend.square(raw)  # raw handles must be packed first
    drifted = inner.rescale(inner.square(inner.encrypt(np.array([2.0]))))
    with pytest.raises(PackingError):
        backend.concat_slots([raw, drifted], [1, 1])  # level drift
    packed = backend.concat_slots([raw], [1])
    with pytest.raises(NotImplementedError):
        backend.rotate(packed, 1)
    other = backend.concat_slots([inner.encrypt(np.array([1.0, 2.0]))], [2])
    with pytest.raises(PackingError):
        backend.add(packed, other)  # mismatched lane layouts
    # attribute fallthrough keeps introspection working
    assert backend.ctx is inner.ctx
    assert backend.name.startswith("slotpack+")


# -- packed engine vs serial engine: bit-identity per image ---------------------------

SHAPE = (1, 6, 6)


@pytest.fixture(scope="module")
def pk_layers():
    rng = np.random.default_rng(7)
    return [
        HeConv2d(rng.normal(0, 0.4, (2, 1, 3, 3)), np.zeros(2), stride=2),
        HePoly([0.1, 0.5, 0.25]),
        HeFlatten(),
        HeLinear(rng.normal(0, 0.3, (10, 8)), np.zeros(10)),
    ]


@pytest.fixture(scope="module")
def pk_images():
    return np.random.default_rng(8).uniform(0, 1, (8, 1, 6, 6))


def _engine_backend(kind: str):
    if kind == "ckksrns":
        return CkksRnsBackend(
            CkksRnsParams(
                n=128,
                moduli_bits=(36, 26, 26, 26, 26, 26),
                scale_bits=26,
                special_bits=45,
                hw=16,
            ),
            seed=0,
        )
    return CkksBackend(CkksParams(n=128, levels=6, scale_bits=26), seed=0)


@pytest.mark.parametrize("kind", ["ckksrns", "ckks"])
def test_packed_engine_bit_identical_to_serial(kind, pk_layers, pk_images):
    """Acceptance: lane-packed batches of B in {1, 3, 8} images (the
    3-image batch is ragged: 3 slots pad to 4) decrypt per image to the
    byte-for-byte serial scores on both real schemes."""
    backend = _engine_backend(kind)
    serial = HeInferenceEngine(backend, pk_layers, SHAPE)
    packed = HeInferenceEngine(serving_backend_for(backend), pk_layers, SHAPE)
    batches = {1: (1,), 3: (2, 1), 8: (3, 3, 2)}
    for total, counts in batches.items():
        offset, requests, want = 0, [], []
        for c in counts:
            chunk = pk_images[offset : offset + c]
            enc = serial.encrypt_images(chunk)
            requests.append(enc)
            # serial reference on the SAME ciphertexts the batch packs —
            # bit-identity is about evaluation, not encryption randomness
            out = serial.run_encrypted(enc)
            want.append(np.stack([backend.decrypt(h, count=c) for h in out], axis=1))
            offset += c
        batch = packed.assemble_batch(requests, counts)
        scores = packed.run_encrypted(batch)
        parts = packed.split_scores(scores, counts)
        for part, w, c in zip(parts, want, counts):
            got = np.stack([backend.decrypt(h, count=c) for h in part], axis=1)
            assert np.array_equal(got, w), f"{kind}: packed != serial at B={total}"


@pytest.mark.faults
def test_poisoned_member_rejected_before_lane_packing(pk_layers, pk_images):
    """A drifted (poisoned) request on the real RNS scheme is rejected
    at admission and its would-be lane-mates still decrypt to the exact
    serial scores — rejection happens before lanes are ever stacked."""
    backend = _engine_backend("ckksrns")
    client = Client(backend, SHAPE)
    serial = CloudService(backend, pk_layers, SHAPE)
    gateway = BatchedCloudService(backend, pk_layers, SHAPE, max_wait_ms=50.0)
    good = [client.encrypt_request(pk_images[i : i + 1]) for i in range(2)]
    want = [client.decrypt_response(serial.classify_encrypted(e), batch=1) for e in good]
    drifted = client.encrypt_request(pk_images[2:3]).copy()
    drifted[0, 0, 0] = backend.rescale(backend.square(drifted[0, 0, 0]))

    futures = [gateway.submit(e, count=1) for e in good]
    poisoned = gateway.try_classify(drifted, count=1)
    assert not poisoned.ok
    assert poisoned.error.code == "RequestValidationError"
    assert not poisoned.error.retryable
    for future, w in zip(futures, want):
        response = future.result(timeout=120)
        assert response.ok, "a rejected request must not fail its lane-mates"
        assert np.array_equal(client.decrypt_response(response.scores, batch=1), w)
    gateway.close()
