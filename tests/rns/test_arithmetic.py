"""Channelwise residue arithmetic (add/mul/neg/scalar/matmul)."""

import numpy as np
import pytest

from repro.rns.arithmetic import (
    channel_add,
    channel_matmul,
    channel_mul,
    channel_neg,
    channel_scalar_mul,
)
from repro.rns.base import RnsBase
from repro.rns.decompose import rns_decompose, rns_recompose_signed


@pytest.fixture(scope="module")
def base():
    return RnsBase.from_bit_sizes([30, 30, 30, 30], 64)


def test_add_mul_neg_scalar(base, rng):
    x = rng.integers(-(2**20), 2**20, 40)
    y = rng.integers(-(2**20), 2**20, 40)
    rx, ry = rns_decompose(x, base), rns_decompose(y, base)
    assert np.array_equal(rns_recompose_signed(channel_add(rx, ry, base), base), x + y)
    assert np.array_equal(rns_recompose_signed(channel_mul(rx, ry, base), base), x * y)
    assert np.array_equal(rns_recompose_signed(channel_neg(rx, base), base), -x)
    assert np.array_equal(
        rns_recompose_signed(channel_scalar_mul(rx, -7, base), base), -7 * x
    )


def test_matmul_matches_integer(base, rng):
    x = rng.integers(-100, 100, (6, 8))
    w = rng.integers(-50, 50, (8, 3))
    rx = rns_decompose(x, base)
    out = channel_matmul(rx, w, base)
    assert np.array_equal(rns_recompose_signed(out, base), x @ w)


def test_channel_count_validation(base, rng):
    x = rns_decompose(rng.integers(0, 10, 4), base)
    with pytest.raises(ValueError):
        channel_add(x[:2], x, base)
