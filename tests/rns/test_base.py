"""RnsBase: construction, sub-bases, metadata."""

import pytest

from repro.rns.base import RnsBase


def test_from_bit_sizes_ntt_friendly():
    base = RnsBase.from_bit_sizes([40, 26, 26], 64)
    assert base.k == 3
    assert base.bit_sizes == [40, 26, 26]
    assert all((m - 1) % 128 == 0 for m in base.moduli)


def test_non_ntt_modulus_rejected():
    with pytest.raises(ValueError, match="NTT-friendly"):
        RnsBase([1_000_003], n=64)


def test_no_n_skips_ntt_check():
    base = RnsBase([1_000_003, 97])
    assert base.k == 2


def test_drop_last_and_prefix():
    base = RnsBase.from_bit_sizes([30, 26, 26, 26], 64)
    assert base.drop_last().moduli == base.moduli[:-1]
    assert base.prefix(2).moduli == base.moduli[:2]
    with pytest.raises(ValueError):
        base.prefix(0)
    with pytest.raises(ValueError):
        base.prefix(5)
    with pytest.raises(ValueError):
        RnsBase.from_bit_sizes([26], 64).drop_last()


def test_total_bits_and_range():
    base = RnsBase.from_bit_sizes([26, 26], 64)
    assert base.total_bits == base.modulus.bit_length()
    assert base.max_representable() == base.modulus // 2
    assert base.channel_dtype_ok()


def test_exclusion_gives_distinct_chains():
    a = RnsBase.from_bit_sizes([26, 26], 64)
    b = RnsBase.from_bit_sizes([26, 26], 64, exclude=set(a.moduli))
    assert not set(a.moduli) & set(b.moduli)
