"""Base conversion and digit extension used by RNS key switching."""

import numpy as np
import pytest

from repro.rns.base import RnsBase
from repro.rns.convert import approx_base_convert, extend_digit
from repro.rns.decompose import rns_decompose


def test_extend_digit_centered(rng):
    src_m = 97
    digit = rng.integers(0, src_m, 20)
    dst = [101, 65537]
    out = extend_digit(digit, src_m, dst)
    assert out.shape == (2, 20)
    for i, m in enumerate(dst):
        for j in range(20):
            v = int(digit[j])
            centered = v - src_m if v > src_m // 2 else v
            assert int(out[i, j]) == centered % m


def test_approx_base_convert_exact_with_correction(rng):
    src = RnsBase.from_bit_sizes([26, 26, 26], 64)
    dst = RnsBase.from_bit_sizes([30, 30], 64, exclude=set(src.moduli))
    x = rng.integers(0, 2**60, 50).astype(object)
    got = approx_base_convert(rns_decompose(x, src), src, dst)
    want = rns_decompose(x, dst)
    assert np.array_equal(got, want)


def test_approx_base_convert_overflow_bounded(rng):
    """Without correction the result is off by v*Q with 0 <= v < k."""
    src = RnsBase.from_bit_sizes([26, 26, 26], 64)
    dst = RnsBase.from_bit_sizes([40], 64, exclude=set(src.moduli))
    # uniform over [0, Q): Q ~ 2^78 exceeds int64, sample via bigints
    x = np.array(
        [int.from_bytes(rng.bytes(12), "little") % src.modulus for _ in range(100)],
        dtype=object,
    )
    got = approx_base_convert(rns_decompose(x, src), src, dst, correct_overflow=False)
    m = dst.moduli[0]
    q_mod = src.modulus % m
    want = rns_decompose(x, dst)[0]
    diff = (got[0] - want) % m
    # difference must be v * Q mod m for v in [0, k)
    allowed = {(v * q_mod) % m for v in range(src.k)}
    assert set(int(d) for d in diff.ravel()) <= allowed


def test_channel_count_validated(rng):
    src = RnsBase.from_bit_sizes([26, 26], 64)
    dst = RnsBase.from_bit_sizes([30], 64, exclude=set(src.moduli))
    with pytest.raises(ValueError):
        approx_base_convert(np.zeros((3, 4), dtype=np.int64), src, dst)
