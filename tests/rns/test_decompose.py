"""Fig. 2 tensor decomposition/recomposition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rns.base import RnsBase
from repro.rns.decompose import rns_decompose, rns_recompose, rns_recompose_signed


@pytest.fixture(scope="module")
def base():
    return RnsBase.from_bit_sizes([26, 26, 26], 64)


def test_roundtrip_unsigned(base, rng):
    x = rng.integers(0, 2**40, (3, 7))
    st_ = rns_decompose(x, base)
    assert st_.shape == (3, 3, 7)
    assert st_.dtype == np.int64
    assert np.array_equal(rns_recompose(st_, base), x)


def test_roundtrip_signed(base, rng):
    x = rng.integers(-(2**40), 2**40, (2, 5, 5))
    st_ = rns_decompose(x, base)
    assert np.array_equal(rns_recompose_signed(st_, base), x)


def test_float_rejected(base):
    with pytest.raises(TypeError):
        rns_decompose(np.array([1.5]), base)


def test_channel_count_validated(base):
    x = rns_decompose(np.arange(4), base)
    with pytest.raises(ValueError):
        rns_recompose(x[:2], base)


def test_residues_canonical(base, rng):
    x = rng.integers(-(2**50), 2**50, 100)
    st_ = rns_decompose(x, base)
    for i, m in enumerate(base.moduli):
        assert np.all(st_[i] >= 0)
        assert np.all(st_[i] < m)


def test_object_input(base):
    x = np.array([1 << 70, -(1 << 69)], dtype=object)
    # Q ~ 2^78 so these are representable
    st_ = rns_decompose(x, base)
    back = rns_recompose_signed(st_, base)
    assert [int(v) for v in back] == [1 << 70, -(1 << 69)]


@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=-(2**70), max_value=2**70))
def test_signed_roundtrip_property(v):
    base = RnsBase.from_bit_sizes([26, 26, 26], 64)
    st_ = rns_decompose(np.array([v], dtype=object), base)
    assert int(rns_recompose_signed(st_, base)[0]) == v
