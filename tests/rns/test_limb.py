"""Multi-limb arithmetic: split/normalize/fold against big-int reference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nt.primes import gen_primes
from repro.rns.limb import (
    LIMB_BITS,
    carry_normalize,
    fold_mod,
    limbs_to_int,
    n_limbs,
    partial_residue_limbs,
    split_limbs,
)


def test_n_limbs():
    assert n_limbs(2**10) == 1
    assert n_limbs(2**28) == 2  # bit_length 29
    assert n_limbs(2**28 - 1) == 1
    assert n_limbs(2**100) == 4


def test_split_roundtrip_object(rng):
    vals = np.array([int(v) << 40 for v in rng.integers(0, 2**60, 20)], dtype=object)
    d = 4
    limbs = split_limbs(vals, d)
    assert limbs.shape == (4, 20)
    back = limbs_to_int(limbs)
    assert all(int(a) == int(b) for a, b in zip(back, vals))


def test_split_roundtrip_int64(rng):
    vals = rng.integers(0, 2**56, 50)
    limbs = split_limbs(vals, 2)
    assert np.array_equal(limbs_to_int(limbs).astype(np.int64), vals)


def test_split_overflow_detected():
    with pytest.raises(ValueError):
        split_limbs(np.array([1 << 60], dtype=object), 2)
    with pytest.raises(ValueError):
        split_limbs(np.array([-5], dtype=object), 2)


def test_carry_normalize(rng):
    raw = rng.integers(0, 2**60, (3, 10))
    norm = carry_normalize(raw)
    assert np.all(norm < (1 << LIMB_BITS))
    assert np.all(norm >= 0)
    assert all(
        int(a) == int(b) for a, b in zip(limbs_to_int(norm), limbs_to_int(raw.astype(np.int64)))
    )


@pytest.mark.parametrize("mbits", [20, 30, 40, 50, 80, 150])
def test_fold_mod_matches_bigint(mbits, rng):
    m = gen_primes([mbits])[0]
    raw = rng.integers(0, 2**55, (5, 30))
    norm = carry_normalize(raw)
    got = fold_mod(norm, m)
    want = np.mod(limbs_to_int(norm), m)
    assert all(int(a) == int(b) for a, b in zip(np.asarray(got).ravel(), want.ravel()))


@pytest.mark.parametrize("mbits", [20, 35, 60, 120])
def test_partial_residue_congruent_and_bounded(mbits, rng):
    m = gen_primes([mbits])[0]
    vals = np.array([int(v) << 100 for v in rng.integers(0, 2**50, 25)], dtype=object)
    limbs = split_limbs(vals, 6)
    part = partial_residue_limbs(limbs, m)
    recon = limbs_to_int(part)
    assert all(int(r) % m == int(v) % m for r, v in zip(recon, vals))
    assert np.all(part < (1 << LIMB_BITS))


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=2**120 - 1), st.integers(min_value=5, max_value=50))
def test_fold_property(value, mbits):
    m = gen_primes([max(mbits, 5)])[0]
    limbs = split_limbs(np.array([value], dtype=object), 5)
    got = fold_mod(limbs, m)
    assert int(np.asarray(got).ravel()[0]) == value % m
