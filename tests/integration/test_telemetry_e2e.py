"""Acceptance: traced encrypted classification over a process pool.

The serving-telemetry contract end to end — one CNN1-HE-RNS classify
with a process-pool executor must leave behind a merged metrics report
carrying worker-side counters (NTT span counts shipped home through the
metered map), the shm dispatch counters, and per-layer ciphertext
health gauges.
"""

import numpy as np
import pytest

from repro import obs
from repro.ckksrns import CkksRnsParams
from repro.henn.backend import CkksRnsBackend
from repro.henn.inference import HeInferenceEngine
from repro.henn.layers import HeConv2d, HeFlatten, HeLinear, HePoly
from repro.obs.metrics import MetricsRegistry, get_registry, set_registry
from repro.obs.report import render_report
from repro.parallel import ProcessExecutor


@pytest.fixture()
def fresh_registry():
    prev = get_registry()
    reg = set_registry(MetricsRegistry())
    try:
        yield reg
    finally:
        set_registry(prev)


def _pool_engine(executor):
    rng = np.random.default_rng(0)
    layers = [
        HeConv2d(rng.uniform(-0.5, 0.5, (2, 1, 3, 3)), rng.uniform(-0.1, 0.1, 2)),
        HePoly(np.array([0.1, 0.5, 0.25])),
        HeFlatten(),
        HeLinear(rng.uniform(-0.3, 0.3, (10, 32)), rng.uniform(-0.1, 0.1, 10)),
    ]
    backend = CkksRnsBackend(
        CkksRnsParams(
            n=128,
            moduli_bits=(36, 26, 26, 26, 26, 26),
            scale_bits=26,
            special_bits=45,
            hw=16,
        ),
        executor=executor,
        seed=0,
    )
    return HeInferenceEngine(backend, layers, (1, 6, 6))


def test_traced_pool_classify_yields_merged_telemetry(fresh_registry):
    images = np.random.default_rng(1).uniform(0, 1, (2, 1, 6, 6))
    with ProcessExecutor(workers=2) as ex:
        engine = _pool_engine(ex)
        with obs.tracing(metrics=fresh_registry) as tracer:
            logits = engine.classify(images)
    assert logits.shape == (2, 10)

    names = fresh_registry.names()

    # shm dispatch path was exercised and counted
    assert fresh_registry.counter("parallel.shm.dispatches").value > 0
    assert fresh_registry.counter("parallel.shm.items").value > 0

    # worker-side NTT counts came home through the metered map
    ledgers = fresh_registry.per_worker()
    assert ledgers, "process-pool workers shipped no metric deltas"
    shipped = set()
    for ledger in ledgers.values():
        shipped.update(ledger)
    assert any(k.startswith("span.nt.ntt") for k in shipped), sorted(shipped)
    # and the merged totals include those same counters
    assert any(n.startswith("span.nt.ntt") for n in names)

    # per-layer ciphertext health gauges, labelled by layer + backend
    for layer in ("HeConv2d", "HePoly", "HeLinear"):
        assert any(
            n.startswith("henn.ct.level{") and f'layer="{layer}"' in n for n in names
        ), layer
    assert "henn.ct.level" in names  # unlabelled floor
    assert fresh_registry.gauge("henn.ct.noise_margin_bits").value > 0
    assert fresh_registry.counter("henn.ct.sampled").value > 0

    # the rendered report shows both the merged and the per-worker view
    report = render_report(tracer, metrics=fresh_registry)
    assert "per-worker metrics" in report
    assert "henn.ct.level" in report
    assert any(w in report for w in ledgers)
