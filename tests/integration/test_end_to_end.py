"""End-to-end pipeline on real homomorphic encryption.

The headline claims of the paper, at test scale:

* both schemes classify identically to the plaintext SLAF model
  (accuracy parity, Tables III/V);
* CKKS-RNS is faster than multiprecision CKKS on the same network;
* mock-backend accuracy equals real-HE accuracy on the same inputs.
"""

import time

import numpy as np
import pytest

from repro.ckks import CkksParams
from repro.ckksrns import CkksRnsParams
from repro.data import load_synth_mnist, normalize_unit, to_nchw
from repro.henn import (
    CkksBackend,
    CkksRnsBackend,
    MockBackend,
    build_cnn1,
    compile_model,
    slafify,
)
from repro.henn.compiler import model_depth
from repro.henn.inference import HeInferenceEngine
from repro.nn import TrainConfig, Trainer


@pytest.fixture(scope="module")
def pipeline():
    xtr, ytr, xte, yte = load_synth_mnist(n_train=2000, n_test=300, seed=7, image_size=12)
    x = to_nchw(normalize_unit(xtr))
    xv = to_nchw(normalize_unit(xte))
    model = build_cnn1(variant="tiny", seed=0)
    Trainer(model, TrainConfig(epochs=8, batch_size=64, max_lr=0.08, seed=0)).fit(x, ytr)
    slaf = slafify(model, x, ytr, epochs=2, per_channel=True, seed=0)
    layers = compile_model(slaf)
    return slaf, layers, xv, yte


def test_real_rns_matches_plaintext_predictions(pipeline):
    slaf, layers, xv, yte = pipeline
    depth = model_depth(layers)
    backend = CkksRnsBackend(
        CkksRnsParams(n=256, moduli_bits=(40,) + (26,) * depth, special_bits=49, hw=32),
        seed=0,
    )
    eng = HeInferenceEngine(backend, layers, (1, 12, 12))
    logits = eng.classify(xv[:8])
    want = Trainer(slaf).predict(xv[:8])
    assert np.max(np.abs(logits - want)) < 0.02
    assert np.array_equal(logits.argmax(1), want.argmax(1))


def test_rns_faster_than_multiprecision_and_same_answers(pipeline):
    """The paper's central comparison at test scale."""
    slaf, layers, xv, _ = pipeline
    depth = model_depth(layers)
    img = xv[:2]

    rns_backend = CkksRnsBackend(
        CkksRnsParams(n=256, moduli_bits=(40,) + (26,) * depth, special_bits=49, hw=32),
        seed=0,
    )
    rns_eng = HeInferenceEngine(rns_backend, layers, (1, 12, 12))
    t0 = time.perf_counter()
    rns_logits = rns_eng.classify(img)
    rns_time = time.perf_counter() - t0

    mp_backend = CkksBackend(
        CkksParams(n=256, scale_bits=26, q0_bits=40, levels=depth, hw=32), seed=0
    )
    mp_eng = HeInferenceEngine(mp_backend, layers, (1, 12, 12))
    t0 = time.perf_counter()
    mp_logits = mp_eng.classify(img)
    mp_time = time.perf_counter() - t0

    assert np.array_equal(rns_logits.argmax(1), mp_logits.argmax(1))
    assert np.max(np.abs(rns_logits - mp_logits)) < 0.05
    assert rns_time < mp_time, f"RNS {rns_time:.2f}s vs MP {mp_time:.2f}s"


def test_mock_equals_real_accuracy_on_batch(pipeline):
    slaf, layers, xv, yte = pipeline
    depth = model_depth(layers)
    mock = MockBackend(batch=16, levels=depth + 1)
    mock_eng = HeInferenceEngine(mock, layers, (1, 12, 12))
    real = CkksRnsBackend(
        CkksRnsParams(n=256, moduli_bits=(40,) + (26,) * depth, special_bits=49, hw=32),
        seed=0,
    )
    real_eng = HeInferenceEngine(real, layers, (1, 12, 12))
    m_logits = mock_eng.classify(xv[:8])
    r_logits = real_eng.classify(xv[:8])
    assert np.array_equal(m_logits.argmax(1), r_logits.argmax(1))
    assert np.max(np.abs(m_logits - r_logits)) < 0.02
