"""Synthetic MNIST: shapes, determinism, class separability."""

import numpy as np
import pytest

from repro.data import (
    Dataset,
    SynthMnistConfig,
    generate_synth_mnist,
    load_synth_mnist,
    normalize_standard,
    normalize_unit,
    downsample,
    render_digit,
    to_nchw,
    train_test_split,
)


def test_render_shapes_and_dtype():
    img = render_digit(3, rng=0)
    assert img.shape == (28, 28)
    assert img.dtype == np.uint8
    with pytest.raises(ValueError):
        render_digit(10)


def test_render_deterministic():
    a = render_digit(7, rng=42)
    b = render_digit(7, rng=42)
    assert np.array_equal(a, b)


def test_render_has_ink_inside_frame():
    for d in range(10):
        img = render_digit(d, rng=d)
        assert img.max() > 150, f"digit {d} too faint"
        # the glyph lives in the interior; border rows mostly dark
        assert img[0].mean() < 100 and img[-1].mean() < 100


def test_generate_balancedish_labels():
    x, y = generate_synth_mnist(500, seed=3)
    assert x.shape == (500, 28, 28)
    counts = np.bincount(y, minlength=10)
    assert counts.min() > 20  # roughly balanced


def test_generate_custom_size():
    cfg = SynthMnistConfig(image_size=12)
    x, y = generate_synth_mnist(10, seed=0, config=cfg)
    assert x.shape == (10, 12, 12)


def test_load_cache_roundtrip(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
    a = load_synth_mnist(n_train=50, n_test=20, seed=9, image_size=12)
    b = load_synth_mnist(n_train=50, n_test=20, seed=9, image_size=12)
    for u, v in zip(a, b):
        assert np.array_equal(u, v)
    assert list(tmp_path.glob("synthmnist*.npz"))


def test_classes_linearly_separable_enough():
    """A linear probe on raw pixels should beat chance by a wide margin —
    sanity that labels carry signal."""
    x, y = generate_synth_mnist(600, seed=1)
    flat = normalize_unit(x).reshape(len(x), -1)
    centroids = np.stack([flat[y == d].mean(axis=0) for d in range(10)])
    preds = np.argmin(
        ((flat[:, None, :] - centroids[None]) ** 2).sum(axis=2), axis=1
    )
    assert (preds == y).mean() > 0.5


def test_transforms():
    x = np.array([[[0, 255], [128, 64]]], dtype=np.uint8)
    u = normalize_unit(x)
    assert u.max() <= 1.0 and u.min() >= 0.0
    s = normalize_standard(x)
    assert s.shape == x.shape
    n = to_nchw(x)
    assert n.shape == (1, 1, 2, 2)
    with pytest.raises(ValueError):
        to_nchw(np.zeros((2, 2)))


def test_downsample():
    x = np.arange(16, dtype=np.float64).reshape(1, 4, 4)
    d = downsample(x, 2)
    assert d.shape == (1, 2, 2)
    assert np.isclose(d[0, 0, 0], (0 + 1 + 4 + 5) / 4)
    assert np.array_equal(downsample(x, 1), x)
    with pytest.raises(ValueError):
        downsample(x, 3)


def test_dataset_batches_and_split(rng):
    x = rng.normal(size=(25, 3))
    y = rng.integers(0, 2, 25)
    ds = Dataset(x, y)
    assert len(ds) == 25
    batches = list(ds.batches(10))
    assert [b[0].shape[0] for b in batches] == [10, 10, 5]
    tr, te = train_test_split(x, y, test_fraction=0.2, seed=0)
    assert len(tr) == 20 and len(te) == 5
    with pytest.raises(ValueError):
        Dataset(x, y[:-1])
    with pytest.raises(ValueError):
        train_test_split(x, y, test_fraction=1.5)
