"""Tracer semantics: nesting, threading, enable/disable, no-op overhead."""

import threading

import pytest

from repro import obs
from repro.obs import tracer as tracer_mod
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NullTracer, Tracer


@pytest.fixture(autouse=True)
def _clean_global_tracer():
    obs.disable()
    yield
    obs.disable()


def test_nested_spans_record_parentage_and_timing():
    t = Tracer()
    with t.span("outer") as outer:
        with t.span("inner", tag="x") as inner:
            pass
    spans = t.finished()
    assert [s.name for s in spans] == ["inner", "outer"]  # completion order
    inner_s, outer_s = spans
    assert inner_s.parent_id == outer_s.span_id
    assert outer_s.parent_id is None
    assert inner_s.tags == {"tag": "x"}
    assert 0 <= inner_s.duration <= outer_s.duration
    assert inner.record is inner_s and outer.record is outer_s


def test_sibling_spans_share_parent():
    t = Tracer()
    with t.span("root"):
        with t.span("a"):
            pass
        with t.span("b"):
            pass
    by_name = {s.name: s for s in t.finished()}
    assert by_name["a"].parent_id == by_name["root"].span_id
    assert by_name["b"].parent_id == by_name["root"].span_id


def test_thread_workers_record_independent_stacks():
    t = Tracer()

    def work(i):
        with t.span("worker", idx=i):
            pass

    threads = [threading.Thread(target=work, args=(i,)) for i in range(8)]
    with t.span("dispatch"):
        for th in threads:
            th.start()
        for th in threads:
            th.join()
    workers = [s for s in t.finished() if s.name == "worker"]
    assert len(workers) == 8
    # Worker spans belong to their own threads: no parent from the main
    # thread's stack, distinct thread ids from the dispatcher's.
    dispatch = next(s for s in t.finished() if s.name == "dispatch")
    assert all(s.parent_id is None for s in workers)
    assert all(s.thread_id != dispatch.thread_id for s in workers)
    assert sorted(s.tags["idx"] for s in workers) == list(range(8))


def test_noop_mode_never_reads_clock(monkeypatch):
    """Disabled tracing must not call perf_counter — counted, not timed."""
    calls = {"n": 0}
    real = tracer_mod.perf_counter

    def counting_perf_counter():
        calls["n"] += 1
        return real()

    monkeypatch.setattr(tracer_mod, "perf_counter", counting_perf_counter)
    obs.disable()
    for _ in range(100):
        with obs.span("hot.kernel", channel=3):
            pass
    assert calls["n"] == 0
    assert len(obs.get_tracer()) == 0
    # Enabled: exactly two clock reads per span (start + end).
    t = obs.enable(metrics=MetricsRegistry())
    for _ in range(10):
        with obs.span("hot.kernel"):
            pass
    assert calls["n"] == 20
    assert len(t) == 10


def test_null_tracer_singleton_span_and_empty_reads():
    nt = NullTracer()
    a = nt.span("x")
    b = nt.span("y", tag=1)
    assert a is b  # shared no-op handle, no allocation per call site
    assert nt.finished() == []
    assert len(nt) == 0
    nt.clear()  # no-op, must not raise


def test_enable_disable_and_scoped_tracing():
    assert not obs.enabled()
    t = obs.enable(metrics=MetricsRegistry())
    assert obs.enabled() and obs.get_tracer() is t
    obs.disable()
    assert not obs.enabled()
    with obs.tracing(metrics=MetricsRegistry()) as scoped:
        assert obs.get_tracer() is scoped
        with obs.span("inside"):
            pass
    assert not obs.enabled()  # previous (null) tracer restored
    assert [s.name for s in scoped.finished()] == ["inside"]


def test_traced_decorator_fast_path_and_span_path():
    @obs.traced("deco.fn")
    def fn(x):
        return x + 1

    obs.disable()
    assert fn(1) == 2
    with obs.tracing(metrics=MetricsRegistry()) as t:
        assert fn(2) == 3
    assert [s.name for s in t.finished()] == ["deco.fn"]


def test_span_feeds_metrics_registry():
    reg = MetricsRegistry()
    with obs.tracing(metrics=reg):
        with obs.span("op"):
            pass
        with obs.span("op"):
            pass
    assert reg.counter("span.op.calls").value == 2
    h = reg.histogram("span.op.seconds")
    assert h.count == 2 and h.total >= 0


def test_absorb_merges_foreign_spans():
    a, b = Tracer(), Tracer()
    with a.span("from_a"):
        pass
    b.absorb(a.finished())
    assert [s.name for s in b.finished()] == ["from_a"]
    b.clear()
    assert b.finished() == []
