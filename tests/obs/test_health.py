"""Ciphertext-health gauges and the decrypt-side precision probe."""

import numpy as np
import pytest

from repro import obs
from repro.henn.backend import MockBackend
from repro.henn.inference import HeInferenceEngine
from repro.henn.layers import HeFlatten, HeLinear, HePoly
from repro.obs.health import ciphertext_health, observe_layer, precision_probe
from repro.obs.metrics import MetricsRegistry, get_registry, set_registry


@pytest.fixture()
def fresh_registry():
    """Swap in an isolated global registry for the duration of one test."""
    prev = get_registry()
    reg = set_registry(MetricsRegistry())
    try:
        yield reg
    finally:
        set_registry(prev)


def _engine(levels=6):
    rng = np.random.default_rng(0)
    layers = [
        HePoly(np.array([0.1, 0.5, 0.25])),
        HeFlatten(),
        HeLinear(rng.uniform(-0.4, 0.4, (10, 16)), rng.uniform(-0.1, 0.1, 10)),
    ]
    backend = MockBackend(batch=8, levels=levels)
    return backend, HeInferenceEngine(backend, layers, (1, 4, 4))


def test_ciphertext_health_fields_on_mock():
    backend = MockBackend(batch=4, scale_bits=26, levels=5)
    ct = backend.encrypt(np.array([0.5, -0.25]))
    h = ciphertext_health(backend, ct)
    assert h["scale_bits"] == pytest.approx(26.0)
    assert h["level"] == 5
    assert h["depth_consumed"] == 0
    # mock modulus fiction: one Δ-sized prime per remaining level
    assert h["modulus_bits"] == pytest.approx(26.0 * 6)
    assert h["noise_margin_bits"] == pytest.approx(26.0 * 5)
    # consume one level: margin shrinks by one prime
    ct2 = backend.rescale(backend.square(ct))
    h2 = ciphertext_health(backend, ct2)
    assert h2["level"] == 4 and h2["depth_consumed"] == 1
    assert h2["noise_margin_bits"] < h["noise_margin_bits"]


def test_ciphertext_health_on_rns_backend(rns_ctx):
    from repro.henn.backend import CkksRnsBackend

    backend = CkksRnsBackend(rns_ctx.params, seed=0)
    ct = backend.encrypt(np.array([0.5]))
    h = ciphertext_health(backend, ct)
    # active prefix of the prime chain: sum of the channel bit-lengths
    expected = sum(int(m).bit_length() for m in backend.ctx.moduli[: h["level"] + 1])
    assert h["modulus_bits"] == pytest.approx(float(expected))
    assert h["noise_margin_bits"] > 0


def test_observe_layer_noop_when_tracing_disabled(fresh_registry):
    backend = MockBackend(batch=4)
    ct = backend.encrypt(np.array([0.5]))
    assert observe_layer(backend, np.array([ct], dtype=object), "HePoly", 0) is None
    assert fresh_registry.names() == []


def test_observe_layer_records_labelled_gauges(fresh_registry):
    backend = MockBackend(batch=4, levels=5)
    handles = np.array([backend.encrypt(np.array([0.5])) for _ in range(3)], dtype=object)
    # make one handle strictly weaker: it must define the floor
    handles[1] = backend.rescale(backend.square(handles[1]))
    with obs.tracing(metrics=fresh_registry):
        health = observe_layer(backend, handles, "HeConv2d", 2)
    assert health is not None and health["level"] == 4
    g = fresh_registry.gauge(
        "henn.ct.level", {"layer": "HeConv2d", "backend": "mock", "index": 2}
    )
    assert g.value == 4.0
    assert fresh_registry.gauge("henn.ct.level").value == 4.0
    assert fresh_registry.counter("henn.ct.sampled").value == 3
    assert fresh_registry.gauge("henn.ct.noise_margin_bits").value > 0


def test_engine_layer_boundaries_feed_health_gauges(fresh_registry):
    backend, engine = _engine()
    x = np.random.default_rng(1).uniform(0, 1, (2, 1, 4, 4))
    with obs.tracing(metrics=fresh_registry):
        engine.classify(x)
    names = fresh_registry.names()
    # one labelled series per (layer, index) plus the unlabelled floor
    assert any(n.startswith("henn.ct.level{") and 'layer="HePoly"' in n for n in names)
    assert any('layer="HeLinear"' in n for n in names)
    assert "henn.ct.level" in names
    floor = fresh_registry.gauge("henn.ct.level").to_dict()
    assert floor["min"] is not None and floor["min"] < backend.levels


def test_engine_without_tracing_records_no_health(fresh_registry):
    _, engine = _engine()
    x = np.random.default_rng(1).uniform(0, 1, (1, 1, 4, 4))
    engine.classify(x)
    assert not any(n.startswith("henn.ct.") for n in fresh_registry.names())


def test_precision_probe_against_plaintext_reference(fresh_registry):
    backend, engine = _engine()
    rng = np.random.default_rng(2)
    x = rng.uniform(0, 1, (3, 1, 4, 4))

    # plaintext reference model: the same graph on raw floats
    poly = lambda v: 0.1 + 0.5 * v + 0.25 * v * v
    linear = engine.layers[2]
    flat = poly(x).reshape(3, -1)
    reference = flat @ linear.weight.T + linear.bias

    enc = engine.encrypt_images(x)
    out = engine.run_encrypted(enc)
    stats = precision_probe(backend, out, reference, count=3, labels={"stage": "logits"})
    assert stats["max_abs"] < 1e-4  # mock noise is pure quantisation
    assert stats["bits_precision"] > 10
    g = fresh_registry.gauge(
        "henn.probe.max_abs_err", {"backend": "mock", "stage": "logits"}
    )
    assert g.value == pytest.approx(stats["max_abs"])
    assert (
        fresh_registry.gauge(
            "henn.probe.bits_precision", {"backend": "mock", "stage": "logits"}
        ).value
        == pytest.approx(stats["bits_precision"])
    )


def test_precision_probe_single_handle(fresh_registry):
    backend = MockBackend(batch=4)
    values = np.array([0.5, -0.25, 0.125])
    ct = backend.encrypt(values)
    stats = precision_probe(backend, ct, values)
    assert stats["max_abs"] < 1e-6
