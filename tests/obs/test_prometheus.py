"""Prometheus text-exposition rendering of the metrics registry."""

from repro.obs.metrics import MetricsRegistry
from repro.obs.prometheus import CONTENT_TYPE, prometheus_name, render_prometheus


def test_prometheus_name_flattening():
    assert prometheus_name("plan.cache.hit") == "repro_plan_cache_hit"
    assert prometheus_name("henn.ct.level", prefix="") == "henn_ct_level"
    assert prometheus_name("1weird-name!") == "repro_1weird_name_"


def test_counter_rendering_with_total_suffix_and_labels():
    reg = MetricsRegistry()
    reg.counter("henn.requests", {"outcome": "ok"}).inc(3)
    reg.counter("henn.requests", {"outcome": "error"}).inc()
    text = render_prometheus(reg)
    assert text.count("# TYPE repro_henn_requests_total counter") == 1
    assert 'repro_henn_requests_total{outcome="ok"} 3' in text
    assert 'repro_henn_requests_total{outcome="error"} 1' in text
    assert text.endswith("\n")


def test_gauge_rendering_skips_never_sampled():
    reg = MetricsRegistry()
    reg.gauge("henn.ct.level").set(2)
    reg.gauge("henn.ct.scale_bits")  # created but never set -> no sample line
    text = render_prometheus(reg)
    assert "# TYPE repro_henn_ct_level gauge" in text
    assert "repro_henn_ct_level 2.0" in text
    assert "# TYPE repro_henn_ct_scale_bits gauge" in text
    assert "\nrepro_henn_ct_scale_bits " not in text


def test_histogram_rendering_as_summary():
    reg = MetricsRegistry()
    h = reg.histogram("henn.request.seconds")
    h.observe_many([1.0, 2.0, 3.0, 4.0])
    text = render_prometheus(reg)
    assert "# TYPE repro_henn_request_seconds summary" in text
    assert 'repro_henn_request_seconds{quantile="0.5"} 2.0' in text
    assert 'repro_henn_request_seconds{quantile="0.99"} 4.0' in text
    assert "repro_henn_request_seconds_sum 10.0" in text
    assert "repro_henn_request_seconds_count 4" in text


def test_empty_histogram_renders_counts_only():
    reg = MetricsRegistry()
    reg.histogram("empty.seconds")
    text = render_prometheus(reg)
    assert "quantile" not in text
    assert "repro_empty_seconds_sum 0.0" in text
    assert "repro_empty_seconds_count 0" in text


def test_label_values_escaped():
    reg = MetricsRegistry()
    reg.counter("c", {"detail": 'quote " backslash \\ newline \n'}).inc()
    text = render_prometheus(reg)
    assert '\\"' in text and "\\\\" in text and "\\n" in text


def test_empty_registry_renders_empty_document():
    assert render_prometheus(MetricsRegistry()) == ""


def test_content_type_is_version_0_0_4():
    assert "version=0.0.4" in CONTENT_TYPE
