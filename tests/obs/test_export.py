"""Export formats: JSON round-trip and Chrome trace-event shape."""

import json

import pytest

from repro.obs.export import (
    dump_chrome_trace,
    dump_json,
    load_json,
    to_chrome_trace,
    trace_to_json,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer


def _sample_tracer() -> Tracer:
    t = Tracer()
    with t.span("henn.layer", layer="HeConv2d", index=0):
        with t.span("ckksrns.mul"):
            pass
        with t.span("ckksrns.rescale"):
            pass
    return t


def test_json_round_trip(tmp_path):
    t = _sample_tracer()
    reg = MetricsRegistry()
    reg.counter("span.ckksrns.mul.calls").inc()
    reg.histogram("span.ckksrns.mul.seconds").observe(0.25)

    path = dump_json(tmp_path / "trace.json", t, reg)
    dump = load_json(path)

    originals = t.finished()
    assert len(dump.spans) == len(originals)
    for a, b in zip(dump.spans, originals):
        assert a.to_dict() == b.to_dict()
    assert dump.metrics["span.ckksrns.mul.calls"]["value"] == 1
    assert dump.metrics["span.ckksrns.mul.seconds"]["count"] == 1


def test_load_json_rejects_foreign_documents(tmp_path):
    p = tmp_path / "other.json"
    p.write_text(json.dumps({"spans": []}))
    with pytest.raises(ValueError):
        load_json(p)


def test_trace_to_json_accepts_span_lists():
    t = _sample_tracer()
    doc = trace_to_json(t.finished())
    assert doc["format"] == "repro.obs/1"
    assert len(doc["spans"]) == 3
    assert doc["metrics"] == {}


def test_chrome_trace_event_shape():
    t = _sample_tracer()
    doc = to_chrome_trace(t)
    events = doc["traceEvents"]
    assert len(events) == 3
    for ev in events:
        assert ev["ph"] == "X"
        assert ev["ts"] >= 0 and ev["dur"] >= 0
        assert ev["pid"] == 0 and isinstance(ev["tid"], int)
    layer = next(e for e in events if e["name"] == "henn.layer")
    assert layer["cat"] == "henn"
    assert layer["args"]["layer"] == "HeConv2d"
    # children carry their parent's id for tree reconstruction
    mul = next(e for e in events if e["name"] == "ckksrns.mul")
    assert mul["args"]["parent_id"] == layer["args"]["span_id"]


def test_chrome_trace_is_valid_json_on_disk(tmp_path):
    t = _sample_tracer()
    path = dump_chrome_trace(tmp_path / "chrome.json", t)
    doc = json.loads(path.read_text())
    assert "traceEvents" in doc and doc["displayTimeUnit"] == "ms"


def test_chrome_trace_empty_tracer():
    assert to_chrome_trace(Tracer())["traceEvents"] == []


def test_json_round_trip_with_gauges_and_labels(tmp_path):
    """Gauges and labelled series survive the JSON dump/load unchanged."""
    t = _sample_tracer()
    reg = MetricsRegistry()
    reg.gauge("henn.ct.level", {"layer": "HeConv2d", "index": 0}).set(3.0)
    reg.gauge("henn.ct.level", {"layer": "HeConv2d", "index": 0}).set(2.0)
    reg.gauge("henn.ct.noise_margin_bits").set(14.5)
    reg.counter("henn.requests", {"outcome": "ok"}).inc(2)

    dump = load_json(dump_json(tmp_path / "trace.json", t, reg))
    assert dump.metrics == reg.snapshot()
    labelled = dump.metrics['henn.ct.level{index="0",layer="HeConv2d"}']
    assert labelled["type"] == "gauge"
    assert labelled["value"] == 2.0 and labelled["min"] == 2.0 and labelled["max"] == 3.0
    assert labelled["labels"] == {"layer": "HeConv2d", "index": "0"}
    assert dump.metrics['henn.requests{outcome="ok"}']["value"] == 2
    # the document itself is plain JSON (no NaN tokens etc.)
    json.loads((tmp_path / "trace.json").read_text())


def test_chrome_trace_round_trip_preserves_worker_tags(tmp_path):
    """Spans absorbed from workers keep their tags through Chrome export."""
    t = _sample_tracer()
    for sp in t.finished():
        sp.tags.setdefault("worker", "worker-42")
    path = dump_chrome_trace(tmp_path / "chrome.json", t)
    doc = json.loads(path.read_text())
    assert all(ev["args"]["worker"] == "worker-42" for ev in doc["traceEvents"])
