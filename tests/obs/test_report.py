"""Aggregation and report rendering, including end-to-end engine traces."""

import numpy as np

from repro import obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import aggregate_spans, cluster_rows, layer_rows, render_report
from repro.obs.tracer import Tracer


def _tree_tracer() -> Tracer:
    t = Tracer()
    with t.span("root"):
        with t.span("child"):
            with t.span("leaf"):
                pass
        with t.span("child"):
            pass
    return t


def test_aggregate_counts_and_self_time():
    t = _tree_tracer()
    aggs = aggregate_spans(t)
    assert aggs["root"].count == 1
    assert aggs["child"].count == 2
    assert aggs["leaf"].count == 1
    # Self time excludes direct children: root self = root - both childs.
    by_name = {s.name: s for s in t.finished()}
    child_total = aggs["child"].total
    assert aggs["root"].self_total <= aggs["root"].total
    assert abs(aggs["root"].self_total - (aggs["root"].total - child_total)) < 1e-9
    # Sum of all self times equals the root wall-clock.
    self_sum = sum(a.self_total for a in aggs.values())
    assert abs(self_sum - by_name["root"].duration) < 1e-9


def test_layer_rows_ordered_by_start():
    t = Tracer()
    with t.span("henn.stage.evaluate"):
        with t.span("henn.layer", layer="HeConv2d", index=0):
            pass
        with t.span("henn.layer", layer="HePoly", index=1):
            pass
    rows = layer_rows(t)
    assert [n for n, _ in rows] == ["HeConv2d", "HePoly"]
    assert all(s >= 0 for _, s in rows)


def test_render_report_contains_primitive_and_layer_sections():
    t = Tracer()
    with t.span("henn.layer", layer="HeLinear", index=0):
        with t.span("ckksrns.mul"):
            pass
    reg = MetricsRegistry()
    reg.counter("span.ckksrns.mul.calls").inc()
    text = render_report(t, reg)
    assert "per-primitive breakdown" in text
    assert "ckksrns.mul" in text
    assert "per-layer breakdown" in text
    assert "HeLinear" in text
    assert "metrics" in text


def test_render_report_empty_tracer_is_safe():
    text = render_report(Tracer())
    assert "per-primitive breakdown" in text


def test_cluster_rows_summarise_pool_metrics():
    reg = MetricsRegistry()
    reg.counter("cluster.dispatches").inc(5)
    reg.counter("cluster.failovers").inc()
    reg.gauge("cluster.workers.ready").set(3)
    reg.histogram("cluster.batch.seconds").observe(0.2)
    reg.counter("serving.requests", {"outcome": "ok"}).inc()  # filtered out
    rows = cluster_rows(reg)
    names = [r[0] for r in rows]
    assert "cluster.dispatches" in names
    assert "cluster.workers.ready" in names
    assert "cluster.batch.seconds" in names
    assert all(n.startswith("cluster.") for n in names)
    text = render_report(Tracer(), reg)
    assert "worker pool (dispatch / failover / respawn)" in text


def test_engine_trace_report_end_to_end():
    """A real (mock-backend) inference produces layer spans + report."""
    from repro.henn.backend import MockBackend
    from repro.henn.inference import HeInferenceEngine
    from repro.henn.layers import HeFlatten, HeLinear

    rng = np.random.default_rng(0)
    layers = [HeFlatten(), HeLinear(rng.normal(0, 0.4, (10, 4)), np.zeros(10))]
    eng = HeInferenceEngine(MockBackend(batch=4), layers, (1, 2, 2))
    x = rng.random((2, 1, 2, 2))

    with obs.tracing(metrics=MetricsRegistry()) as tracer:
        eng.classify(x)
    obs.disable()

    names = {s.name for s in tracer.finished()}
    assert {"henn.stage.encrypt", "henn.stage.evaluate", "henn.stage.decrypt"} <= names
    assert "henn.layer" in names
    # Fig. 5 layer view falls out of the tracer and matches engine.trace.
    rows = layer_rows(tracer)
    assert [n for n, _ in rows] == ["HeFlatten", "HeLinear"]
    assert eng.trace.names == ["HeFlatten", "HeLinear"]
    assert np.allclose(eng.trace.seconds, [s for _, s in rows])
    text = render_report(tracer)
    assert "henn.layer" in text


def test_engine_trace_available_without_global_tracing():
    """With the null tracer active, the engine still exposes layer timings."""
    from repro.henn.backend import MockBackend
    from repro.henn.inference import HeInferenceEngine
    from repro.henn.layers import HeFlatten, HeLinear

    obs.disable()
    rng = np.random.default_rng(1)
    layers = [HeFlatten(), HeLinear(rng.normal(0, 0.4, (10, 4)), np.zeros(10))]
    eng = HeInferenceEngine(MockBackend(batch=4), layers, (1, 2, 2))
    eng.classify(rng.random((2, 1, 2, 2)))
    assert eng.trace.names == ["HeFlatten", "HeLinear"]
    assert eng.trace.total() > 0
    assert len(obs.get_tracer()) == 0  # nothing leaked into the global tracer
