"""Counters, gauges and histograms: aggregation, thread safety, registry semantics."""

import math

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, metric_key
from repro.parallel import ThreadExecutor


def test_counter_basics():
    c = Counter("x")
    c.inc()
    c.inc(5)
    assert c.value == 6
    with pytest.raises(ValueError):
        c.inc(-1)
    assert c.to_dict() == {"type": "counter", "value": 6}


def test_histogram_statistics():
    h = Histogram("lat")
    for v in [3.0, 1.0, 2.0]:
        h.observe(v)
    assert h.count == 3
    assert h.total == 6.0
    assert h.min == 1.0 and h.max == 3.0
    assert h.mean == 2.0
    assert h.percentile(0) == 1.0
    assert h.percentile(50) == 2.0
    assert h.percentile(100) == 3.0
    with pytest.raises(ValueError):
        h.percentile(101)


def test_empty_histogram_is_nan_not_crash():
    h = Histogram("empty")
    assert math.isnan(h.mean) and math.isnan(h.min) and math.isnan(h.max)
    assert math.isnan(h.percentile(50))
    d = h.to_dict()
    assert d["count"] == 0 and d["mean"] is None


def test_registry_get_or_create_and_type_conflict():
    reg = MetricsRegistry()
    assert reg.counter("a") is reg.counter("a")
    assert reg.histogram("b") is reg.histogram("b")
    with pytest.raises(TypeError):
        reg.histogram("a")
    assert reg.names() == ["a", "b"]
    reg.reset()
    assert reg.names() == []


def test_aggregation_across_thread_workers():
    """Residue-channel workers bump shared metrics without losing updates."""
    reg = MetricsRegistry()
    n_items, per_item = 64, 25

    def work(i):
        for _ in range(per_item):
            reg.counter("channels.processed").inc()
        reg.histogram("channel.seconds").observe(float(i))
        return i

    with ThreadExecutor(workers=8) as ex:
        out = ex.map(work, list(range(n_items)))
    assert out == list(range(n_items))
    assert reg.counter("channels.processed").value == n_items * per_item
    h = reg.histogram("channel.seconds")
    assert h.count == n_items
    assert h.total == sum(range(n_items))


def test_snapshot_is_json_shaped():
    reg = MetricsRegistry()
    reg.counter("c").inc(3)
    reg.histogram("h").observe(1.5)
    snap = reg.snapshot()
    assert snap["c"] == {"type": "counter", "value": 3}
    assert snap["h"]["type"] == "histogram"
    assert snap["h"]["count"] == 1 and snap["h"]["mean"] == 1.5


def test_gauge_set_inc_dec_and_envelope():
    g = Gauge("level")
    assert math.isnan(g.value)
    assert g.to_dict() == {"type": "gauge", "value": None, "min": None, "max": None, "samples": 0}
    g.set(4.0)
    g.set(2.0)
    g.set(3.0)
    assert g.value == 3.0
    d = g.to_dict()
    assert d["min"] == 2.0 and d["max"] == 4.0 and d["samples"] == 3
    g.inc(1.5)
    g.dec(0.5)
    assert g.value == 4.0


def test_gauge_inc_from_unset_starts_at_zero():
    g = Gauge("delta")
    g.inc(2.0)
    assert g.value == 2.0


def test_labelled_metrics_are_distinct_series():
    reg = MetricsRegistry()
    a = reg.gauge("henn.ct.level", {"layer": "HeConv2d"})
    b = reg.gauge("henn.ct.level", {"layer": "HePoly"})
    plain = reg.gauge("henn.ct.level")
    assert a is not b and a is not plain
    assert a is reg.gauge("henn.ct.level", {"layer": "HeConv2d"})
    a.set(3)
    b.set(2)
    keys = reg.names()
    assert metric_key("henn.ct.level", {"layer": "HeConv2d"}) in keys
    snap = reg.snapshot()
    assert snap['henn.ct.level{layer="HeConv2d"}']["labels"] == {"layer": "HeConv2d"}


def test_metric_key_sorts_labels():
    assert metric_key("m", {"b": 2, "a": 1}) == 'm{a="1",b="2"}'
    assert metric_key("m") == "m"


def test_summary_empty_and_single_sample():
    h = Histogram("lat")
    s = h.summary()
    assert s["count"] == 0 and s["total"] == 0.0
    assert all(s[k] is None for k in ("min", "max", "mean", "p50", "p90", "p99"))
    h.observe(0.7)
    s = h.summary()
    assert s["count"] == 1
    assert all(s[k] == 0.7 for k in ("min", "max", "mean", "p50", "p90", "p99"))
    # single-sample percentiles are the sample for every q, not an index error
    assert h.percentile(0) == h.percentile(99) == 0.7


def test_merge_delta_counters_gauges_histograms():
    worker = MetricsRegistry()
    worker.counter("ops").inc(5)
    worker.gauge("level", {"layer": "L"}).set(2.0)
    worker.gauge("level", {"layer": "L"}).set(4.0)
    worker.histogram("secs").observe_many([0.1, 0.2])

    parent = MetricsRegistry()
    parent.counter("ops").inc(1)
    parent.merge_delta(worker.to_delta(), worker="worker-1")
    assert parent.counter("ops").value == 6
    g = parent.gauge("level", {"layer": "L"})
    assert g.value == 4.0
    assert g.to_dict()["min"] == 2.0  # envelope widened from the delta's min
    assert parent.histogram("secs").count == 2
    ledger = parent.per_worker()["worker-1"]
    assert ledger["ops"]["value"] == 5
    assert ledger["secs"] == {"type": "histogram", "count": 2, "total": pytest.approx(0.3)}


def test_snapshot_consistent_under_concurrent_merges():
    """snapshot() while worker deltas merge in never crashes or tears."""
    worker = MetricsRegistry()
    worker.counter("c").inc(3)
    worker.gauge("g").set(1.0)
    worker.histogram("h").observe_many([1.0, 2.0, 3.0])
    delta = worker.to_delta()

    parent = MetricsRegistry()
    n_merges = 200

    def merge(i):
        parent.merge_delta(delta, worker=f"worker-{i % 4}")
        return i

    snaps = []

    def snap(i):
        snaps.append(parent.snapshot())
        return i

    with ThreadExecutor(workers=8) as ex:
        ex.map(lambda i: merge(i) if i % 2 else snap(i), list(range(n_merges)))

    final = parent.snapshot()
    assert final["c"]["value"] == 3 * (n_merges // 2)
    assert final["h"]["count"] == 3 * (n_merges // 2)
    # every intermediate snapshot is internally consistent
    for s in snaps:
        if "h" in s:
            assert s["h"]["count"] % 3 == 0
    # odd indices merge, and odd i mod 4 is 1 or 3
    assert set(parent.per_worker()) == {"worker-1", "worker-3"}


def test_histogram_reservoir_bounded_with_exact_scalars():
    h = Histogram("big")
    n = Histogram.RESERVOIR_SIZE + 3000
    h.observe_many(float(i) for i in range(n))
    # Sample storage is bounded; count/total/min/max stay exact.
    assert len(h.samples()) == Histogram.RESERVOIR_SIZE
    assert h.count == n
    assert h.total == sum(range(n))
    assert h.min == 0.0 and h.max == float(n - 1)
    assert h.mean == pytest.approx((n - 1) / 2)
    # Reservoir percentiles track the true distribution (coarse bound).
    assert h.percentile(50) == pytest.approx((n - 1) / 2, rel=0.15)


def test_histogram_reservoir_is_deterministic_per_key():
    def fill(name):
        h = Histogram(name)
        h.observe_many(float(i) for i in range(Histogram.RESERVOIR_SIZE + 500))
        return h.samples()

    assert fill("same") == fill("same")  # seeded by key: reproducible


def test_histogram_absorb_delta_corrects_scalars():
    h = Histogram("merge", reservoir_size=8)
    h.observe(1.0)
    # A worker saw 100 observations but ships only 2 exemplars.
    h.absorb_delta([5.0, 7.0], count=100, total=600.0, mn=0.5, mx=9.0)
    assert h.count == 101
    assert h.total == pytest.approx(601.0)
    assert h.min == 0.5 and h.max == 9.0


def test_histogram_summary_has_p95():
    h = Histogram("s")
    h.observe_many(float(i) for i in range(1, 101))
    s = h.summary()
    assert s["p95"] == pytest.approx(95.0, rel=0.02)
    assert Histogram("empty").summary()["p95"] is None
