"""Counters and histograms: aggregation, thread safety, registry semantics."""

import math

import pytest

from repro.obs.metrics import Counter, Histogram, MetricsRegistry
from repro.parallel import ThreadExecutor


def test_counter_basics():
    c = Counter("x")
    c.inc()
    c.inc(5)
    assert c.value == 6
    with pytest.raises(ValueError):
        c.inc(-1)
    assert c.to_dict() == {"type": "counter", "value": 6}


def test_histogram_statistics():
    h = Histogram("lat")
    for v in [3.0, 1.0, 2.0]:
        h.observe(v)
    assert h.count == 3
    assert h.total == 6.0
    assert h.min == 1.0 and h.max == 3.0
    assert h.mean == 2.0
    assert h.percentile(0) == 1.0
    assert h.percentile(50) == 2.0
    assert h.percentile(100) == 3.0
    with pytest.raises(ValueError):
        h.percentile(101)


def test_empty_histogram_is_nan_not_crash():
    h = Histogram("empty")
    assert math.isnan(h.mean) and math.isnan(h.min) and math.isnan(h.max)
    assert math.isnan(h.percentile(50))
    d = h.to_dict()
    assert d["count"] == 0 and d["mean"] is None


def test_registry_get_or_create_and_type_conflict():
    reg = MetricsRegistry()
    assert reg.counter("a") is reg.counter("a")
    assert reg.histogram("b") is reg.histogram("b")
    with pytest.raises(TypeError):
        reg.histogram("a")
    assert reg.names() == ["a", "b"]
    reg.reset()
    assert reg.names() == []


def test_aggregation_across_thread_workers():
    """Residue-channel workers bump shared metrics without losing updates."""
    reg = MetricsRegistry()
    n_items, per_item = 64, 25

    def work(i):
        for _ in range(per_item):
            reg.counter("channels.processed").inc()
        reg.histogram("channel.seconds").observe(float(i))
        return i

    with ThreadExecutor(workers=8) as ex:
        out = ex.map(work, list(range(n_items)))
    assert out == list(range(n_items))
    assert reg.counter("channels.processed").value == n_items * per_item
    h = reg.histogram("channel.seconds")
    assert h.count == n_items
    assert h.total == sum(range(n_items))


def test_snapshot_is_json_shaped():
    reg = MetricsRegistry()
    reg.counter("c").inc(3)
    reg.histogram("h").observe(1.5)
    snap = reg.snapshot()
    assert snap["c"] == {"type": "counter", "value": 3}
    assert snap["h"]["type"] == "histogram"
    assert snap["h"]["count"] == 1 and snap["h"]["mean"] == 1.5
