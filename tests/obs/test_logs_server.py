"""Structured JSON logs and the /metrics + /healthz scrape server."""

import io
import json
import urllib.error
import urllib.request

import pytest

from repro.obs.logs import JsonLogger, capture_logs, get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.prometheus import CONTENT_TYPE
from repro.obs.server import ObservabilityServer


def test_logger_is_noop_until_configured():
    log = JsonLogger()
    assert not log.enabled
    assert log.event("x", a=1) is None


def test_logger_emits_json_lines():
    log = JsonLogger()
    buf = io.StringIO()
    log.configure(buf)
    rec = log.event("henn.request.ok", seconds=0.5, scores=10)
    assert rec["event"] == "henn.request.ok" and rec["pid"] > 0 and rec["ts"] > 0
    parsed = json.loads(buf.getvalue().splitlines()[0])
    assert parsed["seconds"] == 0.5 and parsed["scores"] == 10
    log.configure(None)
    assert not log.enabled


def test_logger_stringifies_unserialisable_fields():
    log = JsonLogger()
    log.configure(io.StringIO())
    rec = log.event("x", obj=object())
    assert isinstance(rec["obj"], str)


def test_capture_logs_scopes_and_restores():
    with capture_logs() as cap:
        get_logger().event("a", n=1)
        get_logger().event("b", n=2)
    assert not get_logger().enabled
    assert [r["event"] for r in cap.records()] == ["a", "b"]


def _get(url: str):
    with urllib.request.urlopen(url, timeout=5) as resp:
        return resp.status, resp.headers.get("Content-Type"), resp.read().decode()


@pytest.fixture()
def registry():
    reg = MetricsRegistry()
    reg.counter("test.hits").inc(7)
    reg.gauge("test.level").set(3)
    return reg

def test_server_serves_prometheus_metrics(registry):
    with ObservabilityServer(port=0, registry=registry) as srv:
        assert srv.running and srv.port > 0
        status, ctype, body = _get(srv.url + "/metrics")
    assert status == 200 and ctype == CONTENT_TYPE
    assert "repro_test_hits_total 7" in body
    assert "repro_test_level 3.0" in body
    assert not srv.running


def test_server_healthz_ok_and_failing(registry):
    health = {"ok": True, "requests": 0}
    with ObservabilityServer(port=0, registry=registry, health_fn=lambda: health) as srv:
        status, _, body = _get(srv.url + "/healthz")
        assert status == 200 and json.loads(body) == health
        health["ok"] = False
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(srv.url + "/healthz")
        assert err.value.code == 503


def test_server_unknown_path_is_404(registry):
    with ObservabilityServer(port=0, registry=registry) as srv:
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(srv.url + "/nope")
        assert err.value.code == 404


def test_server_start_stop_idempotent(registry):
    srv = ObservabilityServer(port=0, registry=registry)
    assert srv.start() is srv.start()
    srv.stop()
    srv.stop()
    assert not srv.running


def test_server_debug_traces_endpoints(registry):
    from repro.obs.rtrace import RequestTracer, SamplingPolicy, TraceStore

    tracer = RequestTracer(
        SamplingPolicy(rate=1.0), TraceStore(), registry=MetricsRegistry()
    )
    ctx = tracer.mint(1)
    ctx.add_stage("compute", 0.0, 0.5)
    record = tracer.finish(ctx, "ok")
    with ObservabilityServer(
        port=0, registry=registry, trace_store=tracer.store
    ) as srv:
        status, _, body = _get(srv.url + "/debug/traces")
        index = json.loads(body)
        assert status == 200 and index["stored"] == 1
        assert index["recent"][0]["trace_id"] == record.trace_id

        status, _, body = _get(srv.url + f"/debug/traces/{record.trace_id}")
        full = json.loads(body)
        assert status == 200 and full["stages"]["compute"] == 0.5
        assert [s["name"] for s in full["spans"]].count("rtrace.request") == 1

        status, _, body = _get(
            srv.url + f"/debug/traces/{record.trace_id}?format=chrome"
        )
        chrome = json.loads(body)
        assert status == 200 and chrome["traceEvents"]

        with pytest.raises(urllib.error.HTTPError) as err:
            _get(srv.url + "/debug/traces/no-such-id")
        assert err.value.code == 404


def test_server_debug_traces_404_without_store(registry):
    with ObservabilityServer(port=0, registry=registry) as srv:
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(srv.url + "/debug/traces")
        assert err.value.code == 404
