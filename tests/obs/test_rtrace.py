"""Request-scoped distributed tracing: sampling, stages, cross-process merge."""

from __future__ import annotations

import json
import os
import threading

import pytest

from repro.obs.export import to_chrome_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.rtrace import (
    STAGES,
    RequestTrace,
    RequestTracer,
    SamplingPolicy,
    TraceContext,
    TraceStore,
    batch_stage,
)
from repro.obs.tracer import Span


def make_tracer(rate=1.0, **policy_kwargs) -> RequestTracer:
    return RequestTracer(
        policy=SamplingPolicy(rate=rate, seed=7, **policy_kwargs),
        store=TraceStore(),
        registry=MetricsRegistry(),
    )


# -- sampling policy ---------------------------------------------------------


def test_policy_validates_parameters():
    with pytest.raises(ValueError):
        SamplingPolicy(rate=1.5)
    with pytest.raises(ValueError):
        SamplingPolicy(rate=0.5, slow_factor=1.0)
    with pytest.raises(ValueError):
        SamplingPolicy(rate=0.5, ring_size=0)


def test_policy_head_decision_extremes():
    assert not SamplingPolicy(rate=0.0).enabled
    assert not SamplingPolicy(rate=0.0).head_decision()
    on = SamplingPolicy(rate=1.0)
    assert on.enabled and all(on.head_decision() for _ in range(50))


def test_policy_keep_reasons():
    policy = SamplingPolicy(rate=0.5, min_ring=4, slow_factor=2.0)
    assert policy.keep_reason(sampled=True, outcome="ok", seconds=0.1) == "head"
    assert policy.keep_reason(sampled=False, outcome="error", seconds=0.1) == "error"
    # Ring still warming: no slow-tail verdicts yet.
    assert policy.slow_threshold() is None
    assert policy.keep_reason(sampled=False, outcome="ok", seconds=99.0) is None
    for _ in range(4):
        policy.note_latency(0.1)
    assert policy.slow_threshold() == pytest.approx(0.2)
    assert policy.keep_reason(sampled=False, outcome="ok", seconds=0.5) == "slow"
    assert policy.keep_reason(sampled=False, outcome="ok", seconds=0.15) is None


def test_disabled_policy_keeps_nothing():
    policy = SamplingPolicy(rate=0.0)
    assert policy.keep_reason(sampled=False, outcome="error", seconds=9.0) is None


# -- trace context -----------------------------------------------------------


def test_unsampled_context_records_timings_but_no_spans():
    ctx = TraceContext("t-1", 1, sampled=False)
    ctx.add_stage("queue_wait", 1.0, 1.25)
    ctx.add_stage("queue_wait", 2.0, 2.25)
    assert ctx.stages() == {"queue_wait": pytest.approx(0.5)}
    assert ctx.spans() == []
    assert ctx.wire() is None


def test_sampled_context_records_spans_under_root():
    ctx = TraceContext("t-2", 2, sampled=True)
    with ctx.stage("pack", batch=3):
        pass
    ctx.add_stage("compute", 1.0, 2.0, outcome="ok")
    spans = ctx.spans()
    assert [s.name for s in spans] == ["rtrace.pack", "rtrace.compute"]
    assert all(s.parent_id == ctx.root_id for s in spans)
    assert all(s.tags["pid"] == os.getpid() for s in spans)
    assert spans[0].tags["batch"] == 3
    assert ctx.wire() == {"trace_id": "t-2", "request_id": 2}


def test_batch_stage_attributes_to_every_live_context():
    sampled = TraceContext("t-3", 3, sampled=True)
    timed = TraceContext("t-4", 4, sampled=False)
    with batch_stage([sampled, None, timed], "pack"):
        pass
    assert "pack" in sampled.stages() and "pack" in timed.stages()
    assert len(sampled.spans()) == 1 and timed.spans() == []


def test_absorb_worker_spans_remaps_and_reparents():
    ctx = TraceContext("t-5", 5, sampled=True)
    # Worker span ids deliberately collide with plausible gateway ids
    # (fork copies the counter); 11 is the worker-local root.
    shipped = [
        Span("w.root", 10.0, 11.0, span_id=11, parent_id=None, thread_id=1).to_dict(),
        Span("w.child", 10.2, 10.8, span_id=12, parent_id=11, thread_id=1).to_dict(),
        Span("w.orphan", 10.1, 10.3, span_id=13, parent_id=99, thread_id=1).to_dict(),
    ]
    ctx.absorb_worker_spans(shipped, worker="worker-0", pid=4242, align_end=21.0)
    spans = {s.name: s for s in ctx.spans()}
    assert len(spans) == 3
    root, child, orphan = spans["w.root"], spans["w.child"], spans["w.orphan"]
    # Fresh ids, parent links rewritten through the same remap.
    assert root.span_id not in (11, 12, 13)
    assert child.parent_id == root.span_id
    # Unknown parents re-parent under the request root.
    assert root.parent_id == ctx.root_id and orphan.parent_id == ctx.root_id
    assert all(s.tags["worker"] == "worker-0" for s in spans.values())
    assert all(s.tags["pid"] == 4242 for s in spans.values())
    # Clock alignment: the latest shipped end lands on align_end, and
    # relative offsets inside the shipment are preserved.
    assert root.end == pytest.approx(21.0)
    assert root.start == pytest.approx(20.0)
    assert child.duration == pytest.approx(0.6)


def test_absorb_worker_spans_noop_when_unsampled():
    ctx = TraceContext("t-6", 6, sampled=False)
    shipped = [Span("w", 0.0, 1.0, span_id=1, parent_id=None, thread_id=1).to_dict()]
    ctx.absorb_worker_spans(shipped, worker="worker-0")
    assert ctx.spans() == []


# -- store -------------------------------------------------------------------


def _record(trace_id: str, seconds: float) -> RequestTrace:
    return RequestTrace(
        trace_id=trace_id,
        request_id=1,
        sampled=True,
        outcome="ok",
        seconds=seconds,
        kept="head",
    )


def test_store_bounds_recent_and_pins_slowest():
    store = TraceStore(capacity=4, slowest_n=2)
    for i in range(10):
        store.record(_record(f"t-{i}", seconds=float(i)))
    assert len(store) == 4
    assert [t.trace_id for t in store.recent()] == ["t-6", "t-7", "t-8", "t-9"]
    assert [t.trace_id for t in store.slowest()] == ["t-9", "t-8"]
    # Slow exemplars survive eviction from the recent ring.
    store.record(_record("fast", seconds=0.0))
    assert [t.trace_id for t in store.slowest()] == ["t-9", "t-8"]
    assert store.get("t-9").seconds == 9.0
    assert store.get("nope") is None
    snap = store.snapshot()
    assert snap["total_recorded"] == 11 and snap["stored"] == 4
    assert snap["slowest"][0]["trace_id"] == "t-9"


def test_request_trace_round_trips_through_dict():
    trace = _record("t-rt", 1.5)
    trace.stages = {"compute": 1.2}
    trace.spans = [Span("rtrace.request", 0.0, 1.5, 1, None, 1, {"pid": 7})]
    clone = RequestTrace.from_dict(json.loads(json.dumps(trace.to_dict())))
    assert clone.trace_id == "t-rt" and clone.stages == {"compute": 1.2}
    assert clone.spans[0].tags["pid"] == 7 and clone.pids == [7]


# -- request tracer ----------------------------------------------------------


def test_mint_returns_none_when_disabled():
    tracer = RequestTracer()  # default rate=0
    assert not tracer.enabled
    assert tracer.mint(1) is None
    assert tracer.finish(None, "ok") is None
    assert len(tracer.store) == 0


def test_finish_is_idempotent_and_records_head_samples():
    tracer = make_tracer(rate=1.0)
    ctx = tracer.mint(1)
    ctx.add_stage("compute", 0.0, 0.5)
    first = tracer.finish(ctx, "ok")
    assert first is not None and first.kept == "head"
    assert tracer.finish(ctx, "ok") is None  # second close: no-op
    assert len(tracer.store) == 1
    # The closing root span makes the tree whole.
    names = [s.name for s in first.spans]
    assert "rtrace.request" in names
    root = next(s for s in first.spans if s.name == "rtrace.request")
    assert root.span_id == ctx.root_id and root.tags["outcome"] == "ok"


def test_tail_keeps_errors_even_when_head_skipped():
    tracer = make_tracer(rate=1.0)
    ctx = tracer.mint(1)
    ctx.sampled = False  # simulate a head-skip without racing the RNG
    ctx.root_id = None
    record = tracer.finish(ctx, "error", error_code="WorkerLostError")
    assert record is not None and record.kept == "error"
    assert record.error_code == "WorkerLostError"
    assert record.spans == []  # tail-kept: timings only, no spans


def test_finish_observes_stage_histograms_and_counters():
    reg = MetricsRegistry()
    tracer = RequestTracer(SamplingPolicy(rate=1.0), TraceStore(), registry=reg)
    ctx = tracer.mint(1)
    ctx.add_stage("queue_wait", 0.0, 0.25)
    tracer.finish(ctx, "ok")
    assert reg.counter("rtrace.minted").value == 1
    assert reg.counter("rtrace.sampled").value == 1
    assert reg.counter("rtrace.kept", {"reason": "head"}).value == 1
    assert reg.histogram("rtrace.request.seconds").count == 1
    assert reg.histogram("rtrace.stage.queue_wait.seconds").count == 1


def test_stage_vocabulary_is_stable():
    assert STAGES == (
        "gateway",
        "queue_wait",
        "pack",
        "compute",
        "split",
        "failover_retry",
    )


# -- chrome round-trip of a cross-process merged trace (satellite) -----------


def test_cross_process_merge_round_trips_through_chrome_trace():
    tracer = make_tracer(rate=1.0)
    ctx = tracer.mint(1)
    ctx.add_stage("queue_wait", 0.0, 0.1)
    shipped = [
        Span("w.eval", 5.0, 5.9, span_id=2, parent_id=None, thread_id=9).to_dict(),
        Span("w.ntt", 5.1, 5.4, span_id=3, parent_id=2, thread_id=9).to_dict(),
    ]
    ctx.absorb_worker_spans(shipped, worker="worker-1", pid=999, align_end=0.95)
    record = tracer.finish(ctx, "ok")
    assert record.pids == sorted([os.getpid(), 999])

    doc = json.loads(json.dumps(to_chrome_trace(record.spans)))  # valid JSON
    events = doc["traceEvents"]
    by_name = {ev["name"]: ev for ev in events}
    # One track group per process: gateway spans on this pid, worker's on 999.
    assert by_name["rtrace.queue_wait"]["pid"] == os.getpid()
    assert by_name["rtrace.request"]["pid"] == os.getpid()
    assert by_name["w.eval"]["pid"] == 999 and by_name["w.ntt"]["pid"] == 999
    # Parent links survive the remap into the export args.
    assert by_name["w.ntt"]["args"]["parent_id"] == by_name["w.eval"]["args"]["span_id"]
    assert by_name["w.eval"]["args"]["parent_id"] == by_name["rtrace.request"]["args"]["span_id"]
    # Alignment shifted the worker clock domain onto the gateway's:
    # w.eval now ends at align_end (0.95), i.e. 0.05..0.95 against the
    # queue_wait span's 0.0 origin (microsecond timestamps).
    eval_ev = by_name["w.eval"]
    assert eval_ev["ts"] == pytest.approx(0.05e6)
    assert eval_ev["ts"] + eval_ev["dur"] == pytest.approx(0.95e6)


def test_concurrent_stage_recording_is_thread_safe():
    ctx = TraceContext("t-mt", 1, sampled=True)

    def hammer(name):
        for _ in range(200):
            ctx.add_stage(name, 0.0, 0.001)

    threads = [threading.Thread(target=hammer, args=(f"s{i}",)) for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    stages = ctx.stages()
    assert all(stages[f"s{i}"] == pytest.approx(0.2) for i in range(4))
    assert len(ctx.spans()) == 800
