"""Model state save/load."""

import numpy as np
import pytest

from repro.nn import BatchNorm2d, Conv2d, Flatten, Linear, ReLU, Sequential
from repro.nn.serialize import load_model, save_model


def _model(seed):
    rng = np.random.default_rng(seed)
    return Sequential(
        Conv2d(1, 2, 3, rng=rng), BatchNorm2d(2), ReLU(), Flatten(), Linear(2 * 36, 4, rng=rng)
    )


def test_roundtrip(tmp_path, rng):
    m = _model(0)
    # give BN non-trivial running stats
    m.forward(rng.normal(size=(8, 1, 8, 8)))
    path = tmp_path / "model.npz"
    save_model(m, path)
    m2 = _model(99)  # different init
    load_model(m2, path)
    m.eval(), m2.eval()
    x = rng.normal(size=(3, 1, 8, 8))
    assert np.allclose(m.forward(x), m2.forward(x))


def test_architecture_mismatch_detected(tmp_path):
    m = _model(0)
    save_model(m, tmp_path / "m.npz")
    rng = np.random.default_rng(1)
    other = Sequential(Linear(3, 2, rng=rng))
    with pytest.raises(ValueError):
        load_model(other, tmp_path / "m.npz")
