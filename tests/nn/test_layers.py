"""Layer forward/backward correctness: numeric gradient checks."""

import numpy as np
import pytest

from repro.nn import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    Linear,
    ReLU,
    SLAF,
    Sequential,
    Square,
)
from repro.nn.layers.conv import conv_output_shape, im2col


def numeric_gradcheck(layer, x, rng, eps=1e-6, atol=1e-6):
    """Check input and parameter gradients against central differences."""
    out = layer.forward(x)
    g = rng.normal(size=out.shape)
    layer.zero_grad()
    dx = layer.backward(g)
    assert dx.shape == x.shape
    for _ in range(4):
        idx = tuple(rng.integers(0, s) for s in x.shape)
        xp, xm = x.copy(), x.copy()
        xp[idx] += eps
        xm[idx] -= eps
        num = ((layer.forward(xp) * g).sum() - (layer.forward(xm) * g).sum()) / (2 * eps)
        assert abs(num - dx[idx]) < atol, f"input grad at {idx}"
    layer.zero_grad()
    layer.forward(x)
    layer.backward(g)
    for p in layer.parameters():
        flat = p.data.reshape(-1)
        i = int(rng.integers(0, flat.size))
        orig = flat[i]
        flat[i] = orig + eps
        up = (layer.forward(x) * g).sum()
        flat[i] = orig - eps
        dn = (layer.forward(x) * g).sum()
        flat[i] = orig
        assert abs((up - dn) / (2 * eps) - p.grad.reshape(-1)[i]) < atol, p.name


@pytest.fixture
def x4(rng):
    return np.random.default_rng(3).normal(size=(3, 2, 9, 9))


@pytest.fixture
def x2():
    return np.random.default_rng(4).normal(size=(5, 7))


def test_conv_output_shape():
    assert conv_output_shape(28, 28, 5, 5, 2, 1) == (13, 13)
    with pytest.raises(ValueError):
        conv_output_shape(3, 3, 5, 5, 1, 0)


def test_im2col_values(rng):
    x = np.arange(2 * 1 * 4 * 4, dtype=np.float64).reshape(2, 1, 4, 4)
    cols = im2col(x, 2, 2, 2, 0)
    assert cols.shape == (2, 2, 2, 1, 2, 2)
    assert np.array_equal(cols[0, 0, 0, 0], x[0, 0, :2, :2])
    assert np.array_equal(cols[1, 1, 1, 0], x[1, 0, 2:, 2:])


@pytest.mark.parametrize("stride,padding", [(1, 0), (2, 1), (3, 2)])
def test_conv_grad(stride, padding, x4, rng):
    numeric_gradcheck(Conv2d(2, 3, 3, stride=stride, padding=padding, rng=rng), x4, rng)


def test_conv_matches_scipy(rng):
    from scipy.signal import correlate2d

    conv = Conv2d(1, 1, 3, stride=1, padding=0, rng=rng)
    x = rng.normal(size=(1, 1, 8, 8))
    out = conv.forward(x)[0, 0]
    ref = correlate2d(x[0, 0], conv.weight.data[0, 0], mode="valid") + conv.bias.data[0]
    assert np.allclose(out, ref)


def test_conv_channel_check(rng, x4):
    with pytest.raises(ValueError):
        Conv2d(5, 3, 3, rng=rng).forward(x4)


def test_linear_grad(x2, rng):
    numeric_gradcheck(Linear(7, 4, rng=rng), x2, rng)


def test_linear_no_bias(rng, x2):
    lin = Linear(7, 4, bias=False, rng=rng)
    assert lin.bias is None
    assert np.allclose(lin.forward(x2), x2 @ lin.weight.data.T)


def test_batchnorm_grad(x4, rng):
    numeric_gradcheck(BatchNorm2d(2), x4, rng, atol=1e-5)


def test_batchnorm_2d_input(rng, x2):
    bn = BatchNorm2d(7)
    out = bn.forward(x2)
    assert np.allclose(out.mean(axis=0), 0.0, atol=1e-7)
    assert np.allclose(out.std(axis=0), 1.0, atol=1e-2)


def test_batchnorm_eval_uses_running_stats(rng, x4):
    bn = BatchNorm2d(2)
    for _ in range(50):
        bn.forward(np.random.default_rng(1).normal(2.0, 3.0, size=(16, 2, 4, 4)))
    bn.eval()
    out = bn.forward(np.full((1, 2, 2, 2), 2.0))
    assert np.max(np.abs(out)) < 0.2  # mean ~2 normalised to ~0


def test_batchnorm_inference_affine(rng, x4):
    bn = BatchNorm2d(2)
    bn.forward(x4)
    bn.eval()
    scale, shift = bn.inference_affine()
    ref = bn.forward(x4)
    manual = x4 * scale[None, :, None, None] + shift[None, :, None, None]
    assert np.allclose(ref, manual)


def test_avgpool_grad(x4, rng):
    numeric_gradcheck(AvgPool2d(3, stride=2), x4, rng)


def test_avgpool_values():
    x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
    out = AvgPool2d(2).forward(x)
    assert np.allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])


def test_flatten_roundtrip(x4):
    f = Flatten()
    flat = f.forward(x4)
    assert flat.shape == (3, 2 * 9 * 9)
    assert np.array_equal(f.backward(flat), x4)


def test_relu_square_grads(x2, rng):
    numeric_gradcheck(ReLU(), x2 + 0.1, rng)  # keep away from the kink
    numeric_gradcheck(Square(), x2, rng)


def test_slaf_grad_layerwise(x2, rng):
    numeric_gradcheck(SLAF(3, init="relu"), x2, rng, atol=1e-5)


def test_slaf_grad_channelwise(x4, rng):
    numeric_gradcheck(SLAF(3, init="relu", channels=2), x4, rng, atol=1e-5)


def test_slaf_inits():
    assert np.allclose(SLAF(3, init="zero").coeffs.data, 0.0)
    sq = SLAF(2, init="square")
    assert np.allclose(sq.coeffs.data[0], [0.0, 0.0, 1.0])
    relu = SLAF(3, init="relu")
    xs = np.linspace(-1, 1, 7)
    approx = relu.forward(xs)
    assert np.max(np.abs(approx - np.maximum(xs, 0))) < 0.5


def test_slaf_validation():
    with pytest.raises(ValueError):
        SLAF(0)
    with pytest.raises(ValueError):
        SLAF(1, init="square")
    with pytest.raises(ValueError):
        SLAF(3, init="nope")


def test_slaf_polynomial_semantics(rng):
    s = SLAF(3, init="zero")
    s.coeffs.data[0] = [1.0, -2.0, 0.5, 0.25]
    x = rng.normal(size=(4, 3))
    want = 1.0 - 2.0 * x + 0.5 * x**2 + 0.25 * x**3
    assert np.allclose(s.forward(x), want)


def test_sequential_backward_chain(rng, x2):
    model = Sequential(Linear(7, 5, rng=rng), ReLU(), Linear(5, 2, rng=rng))
    out = model.forward(x2)
    g = rng.normal(size=out.shape)
    dx = model.backward(g)
    assert dx.shape == x2.shape
    assert len(model.parameters()) == 4
    assert model.n_params() == 7 * 5 + 5 + 5 * 2 + 2


def test_backward_before_forward_raises(rng):
    for layer in (Linear(3, 2, rng=rng), Conv2d(1, 1, 3, rng=rng), ReLU(), Flatten()):
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((2, 2)))
