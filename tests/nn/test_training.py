"""Optimiser, scheduler, loss, trainer and the SLAF freeze recipe."""

import numpy as np
import pytest

from repro.nn import (
    CrossEntropyLoss,
    Linear,
    OneCycleLR,
    ReLU,
    SGD,
    SLAF,
    Sequential,
    TrainConfig,
    Trainer,
    accuracy,
)
from repro.nn.loss import softmax
from repro.nn.metrics import confusion_matrix
from repro.nn.module import Parameter
from repro.nn.trainer import freeze_non_slaf, unfreeze_all


def test_softmax_rows_sum_to_one(rng):
    p = softmax(rng.normal(size=(6, 10)) * 20)
    assert np.allclose(p.sum(axis=1), 1.0)
    assert np.all(p >= 0)


def test_cross_entropy_value_and_grad(rng):
    loss = CrossEntropyLoss()
    logits = rng.normal(size=(4, 3))
    y = np.array([0, 2, 1, 0])
    val = loss(logits, y)
    p = softmax(logits)
    want = -np.log(p[np.arange(4), y]).mean()
    assert np.isclose(val, want)
    # numeric grad
    g = loss.backward()
    eps = 1e-6
    for idx in [(0, 0), (1, 2), (3, 1)]:
        lp, lm = logits.copy(), logits.copy()
        lp[idx] += eps
        lm[idx] -= eps
        num = (CrossEntropyLoss()(lp, y) - CrossEntropyLoss()(lm, y)) / (2 * eps)
        assert abs(num - g[idx]) < 1e-6


def test_cross_entropy_validation():
    with pytest.raises(ValueError):
        CrossEntropyLoss()(np.zeros((2, 3, 4)), np.zeros(2))
    with pytest.raises(ValueError):
        CrossEntropyLoss()(np.zeros((2, 3)), np.zeros(3))
    with pytest.raises(RuntimeError):
        CrossEntropyLoss().backward()


def test_sgd_step_and_momentum():
    p = Parameter(np.array([1.0]))
    opt = SGD([p], lr=0.1, momentum=0.5)
    p.grad[:] = 1.0
    opt.step()
    assert np.isclose(p.data[0], 0.9)
    opt.step()  # velocity builds: v = 0.5*(-0.1) - 0.1 = -0.15
    assert np.isclose(p.data[0], 0.75)


def test_sgd_frozen_and_clip():
    p = Parameter(np.array([1.0]), frozen=True)
    q = Parameter(np.array([1.0]))
    opt = SGD([p, q], lr=1.0, momentum=0.0, clip_norm=0.5)
    p.grad[:] = 10.0
    q.grad[:] = 10.0
    opt.step()
    assert p.data[0] == 1.0  # frozen untouched
    assert np.isclose(q.data[0], 0.5)  # clipped to norm 0.5


def test_sgd_weight_decay():
    p = Parameter(np.array([2.0]))
    opt = SGD([p], lr=0.1, momentum=0.0, weight_decay=0.5)
    p.grad[:] = 0.0
    opt.step()
    assert np.isclose(p.data[0], 2.0 - 0.1 * 0.5 * 2.0)


def test_sgd_validation():
    with pytest.raises(ValueError):
        SGD([], lr=-1)
    with pytest.raises(ValueError):
        SGD([], lr=0.1, momentum=1.5)


def test_one_cycle_shape():
    p = Parameter(np.zeros(1))
    opt = SGD([p], lr=1.0)
    sched = OneCycleLR(opt, max_lr=1.0, total_steps=100, pct_start=0.3)
    lrs = [sched.lr_at(t) for t in range(100)]
    peak = int(np.argmax(lrs))
    assert 25 <= peak <= 32  # warm-up ends near 30%
    assert np.isclose(max(lrs), 1.0, atol=0.05)
    assert lrs[0] < 0.1  # starts low
    assert lrs[-1] < 0.01  # anneals to ~0
    assert sched.current_lr == sched.lr_at(0)
    sched.step()
    assert opt.lr == sched.lr_at(1)


def test_one_cycle_validation():
    p = Parameter(np.zeros(1))
    with pytest.raises(ValueError):
        OneCycleLR(SGD([p], lr=1.0), 1.0, total_steps=0)
    with pytest.raises(ValueError):
        OneCycleLR(SGD([p], lr=1.0), 1.0, total_steps=10, pct_start=1.5)


def _blob_data(n=600, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 2))
    y = ((x[:, 0] + 2 * x[:, 1]) > 0).astype(np.int64)
    return x, y


def test_trainer_converges_and_history():
    x, y = _blob_data()
    model = Sequential(Linear(2, 16, rng=np.random.default_rng(0)), ReLU(), Linear(16, 2, rng=np.random.default_rng(1)))
    tr = Trainer(model, TrainConfig(epochs=15, batch_size=32, max_lr=0.1, seed=0))
    hist = tr.fit(x, y, x, y)
    assert tr.evaluate(x, y) > 0.95
    assert len(hist.loss) == 15
    assert len(hist.val_acc) == 15
    assert hist.loss[-1] < hist.loss[0]


def test_predict_matches_evaluate():
    x, y = _blob_data(200)
    model = Sequential(Linear(2, 8, rng=np.random.default_rng(0)), ReLU(), Linear(8, 2, rng=np.random.default_rng(1)))
    tr = Trainer(model, TrainConfig(epochs=5, batch_size=32, max_lr=0.1, seed=0))
    tr.fit(x, y)
    logits = tr.predict(x)
    assert np.isclose(accuracy(logits, y), tr.evaluate(x, y))


def test_freeze_non_slaf_only_trains_coefficients():
    model = Sequential(Linear(2, 4, rng=np.random.default_rng(0)), SLAF(3, init="relu"), Linear(4, 2, rng=np.random.default_rng(1)))
    freeze_non_slaf(model)
    frozen = [p.frozen for p in model.parameters()]
    # linear weights+biases frozen, slaf coeffs not
    assert frozen == [True, True, False, True, True]
    unfreeze_all(model)
    assert not any(p.frozen for p in model.parameters())


def test_metrics():
    logits = np.array([[2.0, 1.0], [0.0, 1.0], [3.0, 0.0]])
    y = np.array([0, 1, 1])
    assert np.isclose(accuracy(logits, y), 2 / 3)
    cm = confusion_matrix(logits, y, 2)
    assert cm.sum() == 3
    assert cm[1, 0] == 1  # the mistake
    with pytest.raises(ValueError):
        accuracy(logits, np.array([0]))
