"""Hybrid Fig. 5 engine and the Fig. 1 client/cloud protocol."""

import numpy as np
import pytest

from repro.henn.architectures import build_cnn1
from repro.henn.backend import MockBackend
from repro.henn.compiler import compile_model, model_depth, slafify
from repro.henn.hybrid import HybridRnsEngine
from repro.henn.protocol import Client, CloudService
from repro.nn import Trainer


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(0)
    x = rng.uniform(0, 1, (400, 1, 12, 12))
    y = rng.integers(0, 10, 400)
    from repro.nn import TrainConfig

    model = build_cnn1(variant="tiny", seed=0)
    Trainer(model, TrainConfig(epochs=2, batch_size=32, max_lr=0.05, seed=0)).fit(x, y)
    slaf = slafify(model, x, y, epochs=1, seed=0)
    layers = compile_model(slaf)
    return slaf, layers, x, y


def _mock(layers):
    return MockBackend(batch=8, levels=model_depth(layers) + 1)


@pytest.mark.parametrize("k", [1, 3, 9])
def test_hybrid_matches_standard_engine(setup, k):
    slaf, layers, x, _ = setup
    backend = _mock(layers)
    hybrid = HybridRnsEngine(backend, layers, (1, 12, 12), k_moduli=k, total_bits=240)
    logits = hybrid.classify(x[:8])
    want = Trainer(slaf).predict(x[:8])
    # conv stage is exact integers; tail is the same HE graph
    assert np.array_equal(logits.argmax(1), want.argmax(1))
    assert np.max(np.abs(logits - want)) < 0.05


def test_hybrid_stage_timings(setup):
    _, layers, x, _ = setup
    hybrid = HybridRnsEngine(_mock(layers), layers, (1, 12, 12), k_moduli=3)
    hybrid.classify(x[:4])
    assert hybrid.stages.conv_stage > 0
    assert hybrid.stages.he_stage > 0
    assert hybrid.latency.count == 1
    assert np.isclose(hybrid.stages.total, hybrid.latency.samples[-1])


def test_hybrid_requires_leading_conv(setup):
    _, layers, _, _ = setup
    with pytest.raises(ValueError):
        HybridRnsEngine(_mock(layers), layers[1:], (1, 12, 12))


def test_hybrid_accuracy_loop(setup):
    _, layers, x, y = setup
    hybrid = HybridRnsEngine(_mock(layers), layers, (1, 12, 12), k_moduli=3)
    acc = hybrid.accuracy(x[:16], y[:16])
    assert 0.0 <= acc <= 1.0


def test_protocol_roundtrip_and_isolation(setup):
    """Fig. 1: the cloud never sees plaintext or the secret key."""
    slaf, layers, x, _ = setup
    backend = _mock(layers)
    client = Client(backend, (1, 12, 12))
    cloud = CloudService(backend, layers, (1, 12, 12))
    enc = client.encrypt_request(x[:4])
    enc_scores = cloud.classify_encrypted(enc)
    logits = client.decrypt_response(enc_scores, batch=4)
    want = Trainer(slaf).predict(x[:4])
    assert np.array_equal(logits.argmax(1), want.argmax(1))
    assert cloud.last_latency > 0
    # the cloud object holds no secret material
    assert not hasattr(cloud, "sk")
    assert not any("sk" in attr for attr in vars(cloud))
