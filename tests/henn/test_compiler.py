"""Model compiler: BN folding, SLAF lowering, depth accounting, slafify."""

import numpy as np
import pytest

from repro.henn.backend import MockBackend
from repro.henn.compiler import compile_model, model_depth, slafify
from repro.henn.layers import HeConv2d, HeFlatten, HeLinear, HePoly
from repro.nn import (
    BatchNorm2d,
    Conv2d,
    Flatten,
    Linear,
    ReLU,
    SLAF,
    Sequential,
    Square,
    Trainer,
)


def _bn_model(rng):
    m = Sequential(
        Conv2d(1, 2, 3, stride=2, padding=1, rng=rng),
        BatchNorm2d(2),
        SLAF(3, init="relu"),
        Flatten(),
        Linear(2 * 4 * 4, 5, rng=rng),
        BatchNorm2d(5),
        SLAF(3, init="relu"),
        Linear(5, 3, rng=rng),
    )
    # populate BN running stats
    m.train()
    for _ in range(10):
        m.forward(rng.normal(size=(16, 1, 8, 8)))
    m.eval()
    return m


def test_bn_folding_preserves_function(rng):
    m = _bn_model(rng)
    layers = compile_model(m)
    # BN layers disappeared
    assert [type(l) for l in layers] == [HeConv2d, HePoly, HeFlatten, HeLinear, HePoly, HeLinear]
    backend = MockBackend(batch=4, levels=20, quantize=False)
    x = rng.uniform(0, 1, (4, 1, 8, 8))
    want = m.forward(x)
    enc = np.empty((1, 8, 8), dtype=object)
    for i in range(8):
        for j in range(8):
            enc[0, i, j] = backend.encrypt(x[:, 0, i, j])
    h = enc
    for layer in layers:
        h = layer.forward(backend, h)
    got = np.stack([backend.decrypt(o, count=4) for o in h], axis=1)
    assert np.max(np.abs(got - want)) < 1e-6


def test_depth_accounting(rng):
    m = _bn_model(rng)
    layers = compile_model(m)
    # conv(1) + slaf(3) + dense(1) + slaf(3) + dense(1)
    assert model_depth(layers) == 9


def test_relu_rejected(rng):
    m = Sequential(Linear(4, 2, rng=rng), ReLU())
    with pytest.raises(ValueError, match="ReLU"):
        compile_model(m)


def test_square_lowered(rng):
    m = Sequential(Linear(4, 2, rng=rng), Square())
    layers = compile_model(m)
    assert isinstance(layers[1], HePoly)
    assert layers[1].depth == 2


def test_orphan_batchnorm_rejected(rng):
    m = Sequential(BatchNorm2d(3), Linear(3, 2, rng=rng))
    with pytest.raises(ValueError, match="BatchNorm"):
        compile_model(m)


def test_unknown_layer_rejected():
    class Weird:
        pass

    m = Sequential()
    m.layers = [Weird()]
    with pytest.raises(ValueError, match="lowering"):
        compile_model(m)


def test_prune_threshold_propagates(rng):
    m = Sequential(Conv2d(1, 1, 3, rng=rng), Flatten(), Linear(36, 2, rng=rng))
    layers = compile_model(m, prune_below=0.05)
    assert layers[0].prune_below == 0.05
    assert layers[2].prune_below == 0.05


def _toy_classifier(rng):
    x = rng.normal(size=(400, 1, 6, 6))
    y = (x.mean(axis=(1, 2, 3)) > 0).astype(np.int64)
    m = Sequential(Conv2d(1, 2, 3, stride=2, rng=rng), ReLU(), Flatten(), Linear(2 * 4, 2, rng=rng))
    from repro.nn import TrainConfig

    Trainer(m, TrainConfig(epochs=8, batch_size=32, max_lr=0.05, seed=0)).fit(x, y)
    return m, x, y


def test_slafify_replaces_relu_and_keeps_weights(rng):
    m, x, y = _toy_classifier(rng)
    sm = slafify(m, x, y, degree=3, init="relu", epochs=1, seed=0)
    kinds = [type(l).__name__ for l in sm]
    assert "ReLU" not in kinds and "SLAF" in kinds
    # weights untouched (frozen during retraining)
    assert np.array_equal(sm[0].weight.data, m[0].weight.data)
    assert np.array_equal(sm[3].weight.data, m[3].weight.data)
    # coefficients did move away from the pure init
    base = SLAF(3, init="relu").coeffs.data
    assert not np.allclose(sm[1].coeffs.data, base)
    # original model untouched
    assert isinstance(m[1], ReLU)


def test_slafify_accuracy_close_to_relu(rng):
    m, x, y = _toy_classifier(rng)
    relu_acc = Trainer(m).evaluate(x, y)
    sm = slafify(m, x, y, degree=3, init="relu", epochs=2, seed=0)
    slaf_acc = Trainer(sm).evaluate(x, y)
    assert slaf_acc > relu_acc - 0.15


def test_slafify_per_channel(rng):
    m, x, y = _toy_classifier(rng)
    sm = slafify(m, x, y, degree=3, init="relu", epochs=1, per_channel=True, seed=0)
    slaf = [l for l in sm if isinstance(l, SLAF)][0]
    assert slaf.channels == 2  # conv out_channels
    layers = compile_model(sm)
    poly = [l for l in layers if isinstance(l, HePoly)][0]
    assert poly.per_channel
