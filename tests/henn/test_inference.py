"""Inference engine: packing, latency accounting, accuracy loop."""

import numpy as np
import pytest

from repro.henn.architectures import build_cnn1, input_shape_for
from repro.henn.backend import MockBackend
from repro.henn.compiler import compile_model, model_depth, slafify
from repro.henn.inference import HeInferenceEngine
from repro.nn import Trainer


@pytest.fixture(scope="module")
def tiny_setup():
    rng = np.random.default_rng(0)
    x = rng.uniform(0, 1, (600, 1, 12, 12))
    y = (x[:, 0, 3:9, 3:9].mean(axis=(1, 2)) > x.mean(axis=(1, 2, 3))).astype(np.int64) + 2 * 0
    model = build_cnn1(variant="tiny", seed=0)
    from repro.nn import TrainConfig

    Trainer(model, TrainConfig(epochs=3, batch_size=32, max_lr=0.05, seed=0)).fit(x, y % 10)
    slaf = slafify(model, x, y % 10, epochs=1, seed=0)
    layers = compile_model(slaf)
    return slaf, layers, x, y % 10


def test_engine_matches_plain_model(tiny_setup):
    slaf, layers, x, y = tiny_setup
    backend = MockBackend(batch=16, levels=model_depth(layers) + 1)
    eng = HeInferenceEngine(backend, layers, (1, 12, 12))
    logits = eng.classify(x[:16])
    want = Trainer(slaf).predict(x[:16])
    assert logits.shape == (16, 10)
    assert np.max(np.abs(logits - want)) < 1e-2
    assert np.array_equal(logits.argmax(1), want.argmax(1))


def test_engine_latency_and_trace(tiny_setup):
    _, layers, x, _ = tiny_setup
    backend = MockBackend(batch=4, levels=model_depth(layers) + 1)
    eng = HeInferenceEngine(backend, layers, (1, 12, 12))
    eng.classify(x[:4])
    assert eng.latency.count == 1
    assert eng.latency.avg > 0
    assert len(eng.trace.names) == len(layers)
    assert eng.trace.total() <= eng.latency.samples[-1] + 1e-4


def test_engine_input_validation(tiny_setup):
    _, layers, x, _ = tiny_setup
    backend = MockBackend(batch=4, levels=12)
    eng = HeInferenceEngine(backend, layers, (1, 12, 12))
    with pytest.raises(ValueError):
        eng.encrypt_images(x[:2, :, :6, :6])  # wrong spatial size
    with pytest.raises(ValueError):
        eng.encrypt_images(x[:8])  # exceeds batch capacity


def test_engine_accuracy_loops_batches(tiny_setup):
    _, layers, x, y = tiny_setup
    backend = MockBackend(batch=8, levels=12)
    eng = HeInferenceEngine(backend, layers, (1, 12, 12))
    acc = eng.accuracy(x[:24], y[:24])
    assert 0.0 <= acc <= 1.0
    assert eng.latency.count == 3  # three batches of 8
