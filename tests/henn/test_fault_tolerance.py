"""End-to-end fault tolerance: the ISSUE's acceptance scenarios.

A tiny trained CNN1 runs through the Fig. 5 hybrid engine / Fig. 1
protocol while the seeded :class:`FaultInjector` corrupts residue
channels, kills pool workers, and perturbs ciphertext scales.  Each
scenario asserts (a) the classification survives with logits matching
the fault-free run, and (b) the corresponding ``resilience.*`` counters
fired — detection must be observable, not incidental.
"""

import numpy as np
import pytest

from repro.henn.architectures import build_cnn1
from repro.henn.backend import MockBackend
from repro.henn.compiler import compile_model, model_depth, slafify
from repro.henn.hybrid import HybridRnsEngine
from repro.henn.protocol import Client, CloudService, ServiceError
from repro.nn import TrainConfig, Trainer
from repro.obs.metrics import get_registry
from repro.resilience import (
    ChannelIntegrityError,
    FaultInjector,
    ProtocolError,
    ResiliencePolicy,
    ResilientExecutor,
)

pytestmark = pytest.mark.faults


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(0)
    x = rng.uniform(0, 1, (400, 1, 12, 12))
    y = rng.integers(0, 10, 400)
    model = build_cnn1(variant="tiny", seed=0)
    Trainer(model, TrainConfig(epochs=2, batch_size=32, max_lr=0.05, seed=0)).fit(x, y)
    slaf = slafify(model, x, y, epochs=1, seed=0)
    layers = compile_model(slaf)
    return slaf, layers, x, y


def _mock(layers, injector=None):
    return MockBackend(batch=8, levels=model_depth(layers) + 1, fault_injector=injector)


@pytest.fixture(scope="module")
def clean_logits(setup):
    _, layers, x, _ = setup
    engine = HybridRnsEngine(_mock(layers), layers, (1, 12, 12), k_moduli=3, redundancy=2)
    return engine.classify(x[:8])


K_WORK = 5  # 3 data + 2 redundant channels


@pytest.mark.parametrize("channel", range(K_WORK))
def test_any_single_corrupted_channel_recovered(setup, clean_logits, channel):
    """Corrupting *any* one residue channel of the CNN1 conv stage is
    detected and corrected; logits equal the fault-free run exactly
    (the conv stage is integer-exact, so recovery leaves no residue)."""
    _, layers, x, _ = setup
    reg = get_registry()
    rec0 = reg.counter("resilience.channel_recoveries").value
    inj = FaultInjector(seed=channel).corrupt_channel(channel=channel, times=1)
    engine = HybridRnsEngine(
        _mock(layers), layers, (1, 12, 12), k_moduli=3, redundancy=2, fault_injector=inj
    )
    logits = engine.classify(x[:8])
    assert engine.last_faults == [channel]
    assert np.allclose(logits, clean_logits, atol=1e-9)
    assert inj.summary() == {"channel.corrupt": 1}
    assert reg.counter("resilience.channel_recoveries").value > rec0


def test_dropped_channel_recovered(setup, clean_logits):
    _, layers, x, _ = setup
    inj = FaultInjector(seed=5).corrupt_channel(channel=2, times=1, drop=True)
    engine = HybridRnsEngine(
        _mock(layers), layers, (1, 12, 12), k_moduli=3, redundancy=1, fault_injector=inj
    )
    logits = engine.classify(x[:8])
    assert engine.last_faults == [2]
    assert np.allclose(logits, clean_logits, atol=1e-9)


def test_unrecoverable_corruption_is_typed(setup):
    """Without redundancy, a dropped channel raises ChannelIntegrityError
    instead of composing garbage."""
    _, layers, x, _ = setup
    inj = FaultInjector(seed=6).corrupt_channel(channel=0, times=1, drop=True)
    engine = HybridRnsEngine(
        _mock(layers), layers, (1, 12, 12), k_moduli=3, fault_injector=inj
    )
    with pytest.raises(ChannelIntegrityError):
        engine.classify(x[:8])


def test_killed_worker_with_resilient_executor(setup, clean_logits):
    """A killed conv-stage worker degrades process -> thread and the
    classification completes with identical logits.

    (The conv closure cannot cross a process boundary anyway, which is
    itself a dispatch fault the chain must absorb — both failure modes
    end at the same recovered result.)
    """
    _, layers, x, _ = setup
    reg = get_registry()
    faults0 = reg.counter("resilience.faults_detected").value
    inj = FaultInjector(seed=7).fail_worker(item=1, mode="exception", times=1)
    policy = ResiliencePolicy(max_retries=1, backoff_base=0.001, degrade=("thread", "serial"))
    with ResilientExecutor(primary="process", workers=2, policy=policy, injector=inj) as ex:
        engine = HybridRnsEngine(
            _mock(layers), layers, (1, 12, 12), k_moduli=3, redundancy=2, executor=ex
        )
        logits = engine.classify(x[:8])
    assert np.allclose(logits, clean_logits, atol=1e-9)
    assert reg.counter("resilience.faults_detected").value > faults0


def test_worker_loss_as_erasure_feeds_rrns(setup, clean_logits):
    """An exhausted item surfaces as None (erasure) and RRNS reconstructs
    the conv output from the surviving channels."""
    _, layers, x, _ = setup
    inj = FaultInjector(seed=8).fail_worker(item=4, mode="exception", times=99)
    policy = ResiliencePolicy(
        max_retries=1, backoff_base=0.001, degrade=(), on_exhausted="none"
    )
    with ResilientExecutor(primary="serial", policy=policy, injector=inj) as ex:
        engine = HybridRnsEngine(
            _mock(layers), layers, (1, 12, 12), k_moduli=3, redundancy=2,
            executor=ex, fault_injector=inj,
        )
        logits = engine.classify(x[:8])
    assert engine.last_faults == [4]
    assert np.allclose(logits, clean_logits, atol=1e-9)


def test_protocol_retry_after_scale_fault(setup):
    """A mis-tracked ciphertext scale mid-inference becomes a structured,
    retryable error; the client's second attempt (fault budget spent)
    succeeds with correct logits."""
    slaf, layers, x, _ = setup
    reg = get_registry()
    retries0 = reg.counter("resilience.protocol_retries").value
    inj = FaultInjector(seed=9).perturb_scale(factor=1.7, times=1)
    backend = _mock(layers, injector=inj)
    client = Client(backend, (1, 12, 12))
    cloud = CloudService(backend, layers, (1, 12, 12))
    logits = client.classify_with_retry(cloud, x[:4], max_attempts=3)
    want = Trainer(slaf).predict(x[:4])
    assert np.array_equal(logits.argmax(1), want.argmax(1))
    assert reg.counter("resilience.protocol_retries").value == retries0 + 1
    assert inj.summary() == {"scale.perturb": 1}


class _BrokenCloud:
    """Stub cloud that always answers with one fixed sanitised error."""

    def __init__(self, error: ServiceError):
        self.error = error
        self.calls = 0

    def try_classify(self, enc):
        from repro.henn.protocol import CloudResponse

        self.calls += 1
        return CloudResponse(ok=False, error=self.error)


def test_protocol_exhaustion_raises_sanitized(setup):
    """A persistently failing cloud exhausts the retry budget; the raised
    ProtocolError carries only the sanitised error."""
    _, layers, x, _ = setup
    client = Client(_mock(layers), (1, 12, 12))
    cloud = _BrokenCloud(
        ServiceError("ValueError", "state", True, "ciphertext bookkeeping rejected the request")
    )
    with pytest.raises(ProtocolError) as ei:
        client.classify_with_retry(cloud, x[:4], max_attempts=2)
    assert ei.value.attempts == 2
    assert cloud.calls == 2
    assert ei.value.error.category == "state"


def test_protocol_nonretryable_fails_fast(setup):
    _, layers, x, _ = setup
    client = Client(_mock(layers), (1, 12, 12))
    cloud = _BrokenCloud(
        ServiceError("RuntimeError", "internal", False, "internal evaluation failure")
    )
    with pytest.raises(ProtocolError) as ei:
        client.classify_with_retry(cloud, x[:4], max_attempts=3)
    assert ei.value.attempts == 1
    assert cloud.calls == 1


def _leaks_payload(err: ServiceError, x: np.ndarray) -> bool:
    """No field of the error may embed a payload-derived number."""
    text = f"{err.code} {err.category} {err.detail}"
    probes = [f"{float(v):.3f}"[:5] for v in x.reshape(-1)[:16]]
    return any(p in text for p in probes)


def test_error_responses_leak_no_plaintext(setup):
    """Trust boundary under fault paths: the sanitised error carries only
    a fixed vocabulary — no exception args, no slot values, no scales."""
    _, layers, x, _ = setup
    inj = FaultInjector(seed=11).perturb_scale(factor=1.7, times=99)
    backend = _mock(layers, injector=inj)
    cloud = CloudService(backend, layers, (1, 12, 12))
    client = Client(backend, (1, 12, 12))
    response = cloud.try_classify(client.encrypt_request(x[:4]))
    assert not response.ok
    err = response.error
    assert err.detail in {
        "residue channel check failed beyond recovery",
        "evaluation resources exhausted",
        "ciphertext bookkeeping rejected the request",
        "internal evaluation failure",
    }
    assert not _leaks_payload(err, x[:4])
    # The cloud side still holds no secret material, even mid-fault.
    assert not hasattr(cloud, "sk")
    assert not any("sk" in attr for attr in vars(cloud))
    assert not any("sk" in attr for attr in vars(cloud.engine))


def test_sanitizer_vocabulary():
    from repro.henn.protocol import _sanitize
    from repro.resilience import ExecutorExhaustedError, ItemTimeoutError

    secret = "secret-value-3.14159"
    cases = [
        (ChannelIntegrityError(secret), "integrity", True),
        (ExecutorExhaustedError(secret), "compute", True),
        (ItemTimeoutError(secret), "compute", True),
        (ValueError(secret), "state", True),
        (RuntimeError(secret), "internal", False),
    ]
    for exc, category, retryable in cases:
        err = _sanitize(exc)
        assert err.category == category
        assert err.retryable is retryable
        assert secret not in err.detail and secret not in err.code
