"""CNN1/CNN2 builders and the Fig. 3-5 diagrams."""

import numpy as np
import pytest

from repro.henn.architectures import ascii_diagram, build_cnn1, build_cnn2, input_shape_for
from repro.henn.compiler import compile_model, model_depth, slafify
from repro.nn import BatchNorm2d, Conv2d, Linear, ReLU


@pytest.mark.parametrize("variant", ["tiny", "reduced", "full"])
def test_cnn1_shapes(variant, rng):
    m = build_cnn1(variant=variant, seed=0)
    shape = input_shape_for(variant)
    out = m.forward(rng.uniform(0, 1, (2,) + shape))
    assert out.shape == (2, 10)
    assert isinstance(m[0], Conv2d)
    assert sum(isinstance(l, ReLU) for l in m) == 2
    assert not any(isinstance(l, BatchNorm2d) for l in m)


@pytest.mark.parametrize("variant", ["tiny", "reduced", "full"])
def test_cnn2_shapes(variant, rng):
    m = build_cnn2(variant=variant, seed=0)
    shape = input_shape_for(variant)
    out = m.forward(rng.uniform(0, 1, (2,) + shape))
    assert out.shape == (2, 10)
    assert sum(isinstance(l, Conv2d) for l in m) == 2
    assert sum(isinstance(l, BatchNorm2d) for l in m) == 3
    assert sum(isinstance(l, ReLU) for l in m) == 3


def test_full_cnn1_matches_cryptonets_geometry():
    """Fig. 3: 5 maps of 13x13 = 845 features, 100 hidden units."""
    m = build_cnn1(variant="full", seed=0)
    conv = m[0]
    assert conv.out_channels == 5 and conv.kernel_size == 5 and conv.stride == 2
    dense1 = [l for l in m if isinstance(l, Linear)][0]
    assert dense1.in_features == 845
    assert dense1.out_features == 100


def test_depths_match_paper(rng):
    """CNN2 with degree-3 SLAFs has depth 13 = Table II's L."""
    x = rng.uniform(0, 1, (64, 1, 12, 12))
    y = rng.integers(0, 10, 64)
    m1 = slafify(build_cnn1(variant="tiny", seed=0), x, y, epochs=0 or 1, seed=0)
    m2 = slafify(build_cnn2(variant="tiny", seed=0), x, y, epochs=1, seed=0)
    assert model_depth(compile_model(m1)) == 9
    assert model_depth(compile_model(m2)) == 13


def test_variant_validation():
    with pytest.raises(ValueError):
        build_cnn1(variant="huge")
    with pytest.raises(ValueError):
        input_shape_for("nope")


def test_ascii_diagrams():
    m = build_cnn2(variant="tiny", seed=0)
    plain = ascii_diagram(m, "CNN2")
    assert "conv" in plain and "batchnorm" in plain and "dense" in plain
    rns = ascii_diagram(m, "CNN2-RNS", rns_channels=3)
    assert "RNS decompose" in rns
    assert "CRT recompose" in rns
    assert rns.count("residue ch") == 3
