"""Lazy relinearisation: precision bounds, sweep counts, hoisting.

The lazy BSGS interpreter keeps products in degree-2/3 extended space
and relinearises each block sum once (``docs/KERNELS.md``).  Contract:

* **mock** — lazy is *bit-identical* to eager: the mock's extended
  handles carry exact float values, so deferring the (no-op) keyswitch
  changes nothing;
* **CKKS / CKKS-RNS** — lazy is *not* bit-identical (keyswitch noise is
  injected after rescales instead of before, changing the last few
  bits) but both modes decrypt within the documented per-degree SLAF
  bound, and their mutual difference stays inside ``LAZY_EAGER_ATOL``;
* **counts** — a degree-*d* SLAF performs exactly ``program.relins``
  keyswitch sweeps lazily (``~ceil(d / giant_step)``) versus
  ``program.ct_mults`` eagerly (``~2*sqrt(d)``), metered through
  ``relin.count`` / ``relin.deferred``;
* **hoisting** — re-evaluating the same ciphertext serves every digit
  decomposition from the hoist cache: hits == reuse count;
* **packed** — the SlotPackedBackend lane path inherits the lazy win
  with every lane still inside the precision bound.
"""

import numpy as np
import pytest

from repro.ckks import CkksParams
from repro.ckksrns import CkksRnsParams
from repro.henn.backend import CkksBackend, CkksRnsBackend, MockBackend
from repro.nt.kernels import MAX_POLY_DEGREE, compile_poly_program
from repro.obs.metrics import get_registry
from repro.serving.packing import SlotPackedBackend

from .test_poly_bsgs import REAL_ATOL

#: Documented bound on |lazy - eager| decrypt drift at Δ = 2**26: both
#: orders evaluate the same exact-integer block schedule, differing only
#: in where keyswitch noise (a few bits at Δ) enters, so their gap is an
#: order below the absolute SLAF bound of ``REAL_ATOL``.
LAZY_EAGER_ATOL = 2e-3


def _rns():
    return CkksRnsBackend(
        CkksRnsParams(
            n=128, moduli_bits=(36,) + (26,) * 6, scale_bits=26, special_bits=45, hw=16
        ),
        seed=0,
    )


def _ckks():
    return CkksBackend(
        CkksParams(n=128, scale_bits=26, q0_bits=40, levels=6, hw=16), seed=0
    )


@pytest.fixture(scope="module")
def rns():
    return _rns()


@pytest.fixture(scope="module")
def ckks():
    return _ckks()


def _coeffs(rng, degree):
    c = rng.uniform(-0.5, 0.5, degree + 1)
    c[degree] = rng.choice([-1, 1]) * rng.uniform(0.1, 0.4)
    return c


def _eval_mode(backend, ct, coeffs, mode):
    backend.relin_mode = mode
    try:
        return backend.poly_eval(ct, coeffs)
    finally:
        backend.relin_mode = "lazy"


@pytest.mark.parametrize("degree", range(2, MAX_POLY_DEGREE + 1))
def test_lazy_bitidentical_to_eager_on_mock(degree, rng):
    backend = MockBackend(batch=8, scale_bits=26, levels=12, quantize=False)
    coeffs = _coeffs(rng, degree)
    x = rng.uniform(-1, 1, 8)
    lazy = _eval_mode(backend, backend.encrypt(x), coeffs, "lazy")
    eager = _eval_mode(backend, backend.encrypt(x), coeffs, "eager")
    assert np.array_equal(backend.decrypt(lazy), backend.decrypt(eager))
    assert lazy.level == eager.level and lazy.scale == eager.scale


@pytest.mark.parametrize("degree", range(2, MAX_POLY_DEGREE + 1))
def test_lazy_within_bound_of_eager_on_real_schemes(rns, ckks, degree, rng):
    coeffs = _coeffs(rng, degree)
    x = rng.uniform(-1, 1, 8)
    want = np.polyval(coeffs[::-1], x)
    for backend in (rns, ckks):
        ct = backend.encrypt(x)
        lazy = backend.decrypt(_eval_mode(backend, ct, coeffs, "lazy"), count=8)
        eager = backend.decrypt(_eval_mode(backend, ct, coeffs, "eager"), count=8)
        # Same schedule, same final scale; only keyswitch-noise placement
        # differs.  Each mode tracks the plaintext polynomial...
        assert np.allclose(lazy, want, atol=REAL_ATOL[degree]), backend.name
        assert np.allclose(eager, want, atol=REAL_ATOL[degree]), backend.name
        # ...and they track each other an order tighter.
        assert np.allclose(lazy, eager, atol=LAZY_EAGER_ATOL), backend.name


@pytest.mark.parametrize("degree", range(1, MAX_POLY_DEGREE + 1))
def test_relin_count_matches_program(rns, degree, rng):
    """Lazy sweeps == program.relins (~ceil(d/gs)); eager == ct_mults."""
    prog = compile_poly_program(max(degree, 1))
    reg = get_registry()
    coeffs = _coeffs(rng, degree) if degree > 1 else np.array([0.1, 0.4])
    for mode, expected in (("lazy", prog.relins), ("eager", prog.ct_mults)):
        before = reg.counter("relin.count").value
        deferred_before = reg.counter("relin.deferred").value
        _eval_mode(rns, rns.encrypt(rng.uniform(-1, 1, 8)), coeffs, mode)
        relins = reg.counter("relin.count").value - before
        deferred = reg.counter("relin.deferred").value - deferred_before
        assert relins == expected, (mode, degree)
        # Every lazy sweep runs post-rescale (deferred); eager sweeps never do.
        assert deferred == (relins if mode == "lazy" else 0), (mode, degree)


def test_relin_count_table_documented():
    """The per-degree sweep table in docs/KERNELS.md stays truthful."""
    table = {1: 0, 2: 1, 3: 1, 4: 2, 5: 2, 6: 3, 7: 3, 8: 3}
    for degree, relins in table.items():
        prog = compile_poly_program(degree)
        assert prog.relins == relins, degree
        assert prog.relins <= prog.ct_mults


def test_hoist_cache_hits_equal_reuse_count(rng):
    """Re-evaluating one ciphertext serves all its digit lifts from cache."""
    backend = _rns()
    assert backend.ctx.hoist_cache_bytes > 0
    reg = get_registry()
    coeffs = _coeffs(rng, 5)
    ct = backend.encrypt(rng.uniform(-1, 1, 8))
    backend.ctx.clear_hoist_cache()

    hit0 = reg.counter("keyswitch.hoist.hit").value
    miss0 = reg.counter("keyswitch.hoist.miss").value
    backend.poly_eval(ct, coeffs)
    first_miss = reg.counter("keyswitch.hoist.miss").value - miss0
    assert reg.counter("keyswitch.hoist.hit").value == hit0  # cold: all misses
    assert first_miss > 0

    reuse = 3
    hit1 = reg.counter("keyswitch.hoist.hit").value
    miss1 = reg.counter("keyswitch.hoist.miss").value
    for _ in range(reuse):
        backend.poly_eval(ct, coeffs)
    assert reg.counter("keyswitch.hoist.miss").value == miss1  # warm: no misses
    assert reg.counter("keyswitch.hoist.hit").value - hit1 == reuse * first_miss


def test_hoisting_disabled_never_hits(rng):
    backend = _rns()
    backend.ctx.hoist_cache_bytes = 0
    backend.ctx.clear_hoist_cache()
    reg = get_registry()
    hit0 = reg.counter("keyswitch.hoist.hit").value
    ct = backend.encrypt(rng.uniform(-1, 1, 8))
    backend.poly_eval(ct, _coeffs(rng, 4))
    backend.poly_eval(ct, _coeffs(rng, 4))
    assert reg.counter("keyswitch.hoist.hit").value == hit0


def test_defer_high_relin_bitidentical(rns, rng):
    """Coefficient-domain high components change nothing downstream.

    ``rescale_ext(defer_high=True)`` holds c2/c3 in coefficient form;
    relinearisation must produce the exact same ciphertext as the
    eval-domain route (the NTT is a ring isomorphism, so rescale and
    inverse transform commute)."""
    ctx, keys = rns.ctx, rns.keys
    ct = rns.encrypt(rng.uniform(-1, 1, 8))
    raw = ctx.square_raw(ct)

    evald = ctx.relinearize(ctx.rescale_ext(raw), keys.relin)
    coeffd = ctx.relinearize(ctx.rescale_ext(raw, defer_high=True), keys.relin)
    assert np.array_equal(evald.c0, coeffd.c0)
    assert np.array_equal(evald.c1, coeffd.c1)
    assert evald.level == coeffd.level and evald.scale == coeffd.scale

    # Degree 3 (a Horner fold) through the merged sweep, both domains.
    y = ctx.rescale_ext(raw)
    acc = ctx.rescale(ctx.mul_plain_scalar(ct, 0.5))
    raw3 = ctx.mul_raw(acc, y)
    evald3 = ctx.relinearize(ctx.rescale_ext(raw3), keys.relin, keys.relin3)
    coeffd3 = ctx.relinearize(
        ctx.rescale_ext(raw3, defer_high=True), keys.relin, keys.relin3
    )
    assert np.array_equal(evald3.c0, coeffd3.c0)
    assert np.array_equal(evald3.c1, coeffd3.c1)


def test_defer_high_survives_multiple_rescales(rns, rng):
    """A coeff-high ext rescaled twice equals the all-eval route exactly."""
    ctx, keys = rns.ctx, rns.keys
    ct = rns.encrypt(rng.uniform(-1, 1, 8))
    raw = ctx.square_raw(ct)
    a = ctx.rescale_ext(ctx.mul_plain_scalar_ext(ctx.rescale_ext(raw), 0.5))
    b = ctx.rescale_ext(
        ctx.mul_plain_scalar_ext(ctx.rescale_ext(raw, defer_high=True), 0.5)
    )
    assert b.coeff_high and not a.coeff_high
    ra, rb = ctx.relinearize(a, keys.relin), ctx.relinearize(b, keys.relin)
    assert np.array_equal(ra.c0, rb.c0) and np.array_equal(ra.c1, rb.c1)


def test_mixed_domain_add_ext_rejected(rns, rng):
    ctx = rns.ctx
    ct = rns.encrypt(rng.uniform(-1, 1, 8))
    evald = ctx.rescale_ext(ctx.square_raw(ct))
    coeffd = ctx.rescale_ext(ctx.square_raw(ct), defer_high=True)
    with pytest.raises(ValueError, match="mismatched high-component domains"):
        ctx.add_ext(evald, coeffd)


def test_coeff_high_ext_cannot_multiply(rns, rng):
    ctx = rns.ctx
    ct = rns.encrypt(rng.uniform(-1, 1, 8))
    acc = ctx.rescale(ctx.mul_plain_scalar(ct, 0.5))
    coeffd = ctx.rescale_ext(ctx.square_raw(ct), defer_high=True)
    with pytest.raises(ValueError, match="NTT domain"):
        ctx.mul_raw(acc, coeffd)


@pytest.mark.parametrize("degree", [3, 5, 8])
def test_packed_lanes_inherit_lazy_within_bound(degree, rng):
    """SlotPackedBackend runs the lazy interpreter; every lane stays in bound."""
    inner = _rns()
    backend = SlotPackedBackend(inner)
    assert backend._use_lazy()
    coeffs = _coeffs(rng, degree)
    xs = [rng.uniform(-1, 1, 4) for _ in range(2)]
    packed = backend.concat_slots([inner.encrypt(x) for x in xs], [4, 4])

    reg = get_registry()
    before = reg.counter("relin.count").value
    out = backend.poly_eval(packed, coeffs)
    assert (
        reg.counter("relin.count").value - before
        == compile_poly_program(degree).relins
    )
    got = backend.decrypt(out, count=8)
    want = np.polyval(coeffs[::-1], np.concatenate(xs))
    assert np.allclose(got, want, atol=REAL_ATOL[degree])
