"""HE layers against their plaintext counterparts (mock backend)."""

import numpy as np
import pytest

from repro.henn.backend import MockBackend
from repro.henn.layers import HeAvgPool, HeConv2d, HeFlatten, HeLinear, HePoly
from repro.nn import AvgPool2d, Conv2d, Linear


@pytest.fixture
def backend():
    return MockBackend(batch=4, levels=20)


def _encrypt_maps(backend, x):
    """(B, C, H, W) -> (C, H, W) handle array."""
    b, c, h, w = x.shape
    enc = np.empty((c, h, w), dtype=object)
    for ci in range(c):
        for i in range(h):
            for j in range(w):
                enc[ci, i, j] = backend.encrypt(x[:, ci, i, j])
    return enc


def _decrypt_maps(backend, enc, batch):
    out = np.zeros((batch,) + enc.shape)
    for idx in np.ndindex(enc.shape):
        out[(slice(None),) + idx] = backend.decrypt(enc[idx], count=batch)
    return out


@pytest.mark.parametrize("stride,padding", [(1, 0), (2, 1)])
def test_he_conv_matches_plain(backend, rng, stride, padding):
    plain = Conv2d(2, 3, 3, stride=stride, padding=padding, rng=rng)
    x = rng.uniform(-1, 1, (4, 2, 6, 6))
    want = plain.forward(x)
    he = HeConv2d(plain.weight.data, plain.bias.data, stride, padding)
    got = _decrypt_maps(backend, he.forward(backend, _encrypt_maps(backend, x)), 4)
    assert np.max(np.abs(got - want)) < 1e-4


def test_he_conv_pruning(backend, rng):
    plain = Conv2d(1, 1, 3, rng=rng)
    x = rng.uniform(-1, 1, (2, 1, 5, 5))
    he_exact = HeConv2d(plain.weight.data, plain.bias.data, 1, 0)
    he_pruned = HeConv2d(plain.weight.data, plain.bias.data, 1, 0, prune_below=1e6)
    exact = _decrypt_maps(backend, he_exact.forward(backend, _encrypt_maps(backend, x)), 2)
    pruned = _decrypt_maps(backend, he_pruned.forward(backend, _encrypt_maps(backend, x)), 2)
    # all weights pruned -> only bias remains
    assert np.allclose(pruned, np.broadcast_to(plain.bias.data[0], pruned.shape), atol=1e-6)
    assert not np.allclose(exact, pruned)


def test_he_conv_validation(backend):
    with pytest.raises(ValueError):
        HeConv2d(np.zeros((2, 2)), None)
    he = HeConv2d(np.zeros((1, 2, 3, 3)), None)
    with pytest.raises(ValueError):
        he.forward(backend, np.empty((1, 5, 5), dtype=object))  # wrong channels
    with pytest.raises(ValueError):
        he.forward(backend, np.empty(5, dtype=object))  # wrong rank


def test_he_linear_matches_plain(backend, rng):
    plain = Linear(6, 4, rng=rng)
    x = rng.uniform(-1, 1, (4, 6))
    want = plain.forward(x)
    he = HeLinear(plain.weight.data, plain.bias.data)
    enc = np.array([backend.encrypt(x[:, f]) for f in range(6)], dtype=object)
    out = he.forward(backend, enc)
    got = np.stack([backend.decrypt(h, count=4) for h in out], axis=1)
    assert np.max(np.abs(got - want)) < 1e-4


def test_he_linear_prune(backend, rng):
    w = np.array([[1e-9, 0.5]])
    he = HeLinear(w, None, prune_below=1e-6)
    enc = np.array([backend.encrypt(np.ones(2)), backend.encrypt(np.full(2, 3.0))], dtype=object)
    out = he.forward(backend, enc)
    assert np.allclose(backend.decrypt(out[0], count=2), 1.5, atol=1e-5)


def test_he_linear_validation(backend):
    he = HeLinear(np.zeros((2, 3)), None)
    with pytest.raises(ValueError):
        he.forward(backend, np.empty((2, 2), dtype=object))
    with pytest.raises(ValueError):
        he.forward(backend, np.empty(4, dtype=object))


def test_he_poly_layerwise_and_channelwise(backend, rng):
    x = rng.uniform(-1, 1, (4, 2, 3, 3))
    enc = _encrypt_maps(backend, x)
    coeffs = np.array([[0.1, 0.5, 0.2, 0.05], [-0.2, 0.3, 0.0, 0.1]])
    layer = HePoly(coeffs, per_channel=True)
    got = _decrypt_maps(backend, layer.forward(backend, enc), 4)
    for c in range(2):
        a = coeffs[c]
        want = a[0] + a[1] * x[:, c] + a[2] * x[:, c] ** 2 + a[3] * x[:, c] ** 3
        assert np.max(np.abs(got[:, c] - want)) < 1e-4
    flatc = np.array([0.0, 1.0, 0.5])
    single = HePoly(flatc)
    assert single.depth == 2
    got1 = _decrypt_maps(backend, single.forward(backend, enc), 4)
    want1 = x + 0.5 * x * x
    assert np.max(np.abs(got1 - want1)) < 1e-4


def test_he_flatten_matches_numpy_order(backend, rng):
    x = rng.uniform(-1, 1, (2, 2, 2, 2))
    enc = _encrypt_maps(backend, x)
    flat = HeFlatten().forward(backend, enc)
    got = np.stack([backend.decrypt(h, count=2) for h in flat], axis=1)
    assert np.allclose(got, x.reshape(2, -1))


def test_he_avgpool_matches_plain(backend, rng):
    plain = AvgPool2d(2)
    x = rng.uniform(-1, 1, (3, 1, 4, 4))
    want = plain.forward(x)
    he = HeAvgPool(2)
    got = _decrypt_maps(backend, he.forward(backend, _encrypt_maps(backend, x)), 3)
    assert np.max(np.abs(got - want)) < 1e-4
