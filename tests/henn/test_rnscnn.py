"""Fig. 2/5 integer-RNS convolution: exactness, sweep machinery."""

import numpy as np
import pytest

from repro.henn.rnscnn import (
    QuantizedConvSpec,
    RnsIntegerConv,
    basis_for_budget,
    rns_conv_pipeline,
)
from repro.parallel import ThreadExecutor


@pytest.fixture(scope="module")
def weight():
    return np.random.default_rng(0).normal(0, 0.4, (3, 1, 3, 3))


@pytest.fixture(scope="module")
def images():
    return np.random.default_rng(1).random((4, 10, 10))


def test_basis_for_budget():
    b = basis_for_budget(5, 120)
    assert b.k == 5
    assert b.modulus.bit_length() >= 120
    with pytest.raises(ValueError):
        basis_for_budget(0, 100)


@pytest.mark.parametrize("k", [1, 2, 3, 5, 9])
def test_pipeline_exact_for_all_k(weight, images, k):
    r = rns_conv_pipeline(images, weight, k=k, total_bits=250, stride=2, padding=1)
    assert r["exact"], f"k={k} deviation {r['max_dev']}"


def test_pipeline_matches_float_conv(weight, images):
    """Dequantised output approximates the real-valued convolution."""
    from repro.nn import Conv2d

    r = rns_conv_pipeline(images, weight, k=4, total_bits=250, stride=2, padding=1)
    conv = Conv2d(1, 3, 3, stride=2, padding=1, bias=False)
    conv.weight.data[...] = weight
    want = conv.forward(images[:, None, :, :])
    assert np.max(np.abs(r["rns"] - want)) < 1e-2  # weight quantisation at 2^-20


def test_executor_agreement(weight, images):
    base = basis_for_budget(3, 250)
    spec = QuantizedConvSpec(input_bits=100, weight_bits=100)
    serial = RnsIntegerConv(weight, base, 2, 1, spec=spec)
    with ThreadExecutor(workers=3) as ex:
        threaded = RnsIntegerConv(weight, base, 2, 1, spec=spec, executor=ex)
        a = serial.forward(images)
        b = threaded.forward(images)
    assert np.array_equal(a, b)


def test_dynamic_range_guard(weight):
    small = basis_for_budget(2, 40)  # far too small for the default spec
    with pytest.raises(ValueError, match="dynamic range"):
        RnsIntegerConv(weight, small, 2, 1)


def test_quantizer_exactness():
    spec = QuantizedConvSpec(input_bits=64, weight_bits=64)
    px = np.array([[0.0, 1.0], [0.5, 0.25]])
    q = spec.quantize_input(px)
    assert int(q[0, 1]) == 255 << 56
    assert q.dtype == object
    w = spec.quantize_weight(np.array([1.0, -0.5]))
    assert int(w[0]) == 1 << 64
    assert int(w[1]) == -(1 << 63)


def test_quantizer_validation():
    with pytest.raises(ValueError):
        QuantizedConvSpec(input_bits=4).quantize_input(np.zeros((2, 2)))
    with pytest.raises(ValueError):
        QuantizedConvSpec(weight_bits=10, weight_frac_bits=20).quantize_weight(np.zeros(2))


def test_weight_shape_validated():
    with pytest.raises(ValueError):
        RnsIntegerConv(np.zeros((3, 3)), basis_for_budget(2, 240))


def test_channel_count_validated(weight, images):
    conv = RnsIntegerConv(weight, basis_for_budget(2, 250), 2, 1)
    with pytest.raises(ValueError, match="channels"):
        conv.forward_quantized(
            conv.spec.quantize_input(np.random.random((1, 2, 10, 10)))
        )
