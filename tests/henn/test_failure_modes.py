"""Failure injection: corrupted ciphertexts, wrong keys, depth exhaustion.

HE provides confidentiality, not integrity — these tests pin down what
*does* happen when the pipeline is abused, so regressions in error
behaviour are caught.
"""

import numpy as np
import pytest

from repro.ckksrns import CkksRnsContext, CkksRnsParams, RnsCiphertext


@pytest.fixture(scope="module")
def setup():
    ctx = CkksRnsContext(
        CkksRnsParams(n=64, moduli_bits=(36, 26, 26), scale_bits=26, special_bits=45, hw=8)
    )
    keys = ctx.keygen(0, rotations=(1, 2))
    rng = np.random.default_rng(1)
    z = rng.uniform(-1, 1, ctx.slots)
    return ctx, keys, z, ctx.encrypt(keys.pk, z, rng)


def test_corrupted_channel_destroys_plaintext(setup):
    ctx, keys, z, ct = setup
    bad = ct.copy()
    bad.c0[0] = (bad.c0[0] + 12345) % ctx.moduli[0]
    out = ctx.decrypt_real(keys.sk, bad)
    assert np.max(np.abs(out - z)) > 0.5  # corruption is catastrophic, not subtle


def test_truncated_channel_stack_rejected(setup):
    ctx, keys, z, ct = setup
    with pytest.raises(ValueError):
        RnsCiphertext(ct.c0[:1], ct.c1[:1], level=ct.level, scale=ct.scale)


def test_mismatched_component_shapes_rejected(setup):
    ctx, _, _, ct = setup
    with pytest.raises(ValueError):
        RnsCiphertext(ct.c0, ct.c1[:, :32], level=ct.level, scale=ct.scale)


def test_wrong_galois_key_gives_wrong_rotation(setup):
    """Using the key for rotation 2 on a rotation-1 request must be caught
    by the element lookup (keys are indexed by Galois element)."""
    ctx, keys, z, ct = setup
    g1 = ctx.galois_element(1)
    g2 = ctx.galois_element(2)
    swapped = {g1: keys.galois[g2], g2: keys.galois[g1]}
    # engine-level misuse: key material for the wrong element decrypts to noise
    out = ctx.decrypt_real(keys.sk, ctx.rotate(ct, 1, swapped))
    assert not np.allclose(out, np.roll(z, -1), atol=0.05)


def test_depth_exhaustion_raises(setup):
    ctx, keys, _, ct = setup
    c = ct
    for _ in range(ctx.top_level):
        c = ctx.rescale(ctx.mul_plain_scalar(c, 0.9))
    assert c.level == 0
    with pytest.raises(ValueError, match="rescale"):
        ctx.rescale(ctx.mul_plain_scalar(c, 0.9))


def test_scale_overflow_degrades_gracefully(setup):
    """Stacking plain mults without rescaling blows the scale past q and
    the decryption error becomes macroscopic (documented behaviour)."""
    ctx, keys, z, ct = setup
    c = ct
    for _ in range(4):  # scale Δ^5 ~ 2^130 >> q ~ 2^88
        c = ctx.mul_plain_scalar(c, 1.0)
    out = ctx.decrypt_real(keys.sk, c)
    assert np.max(np.abs(out - z)) > 0.1


def test_cross_context_ciphertext_rejected_or_garbage(setup):
    """A ciphertext from different parameters cannot silently decrypt."""
    ctx, keys, z, ct = setup
    other = CkksRnsContext(
        CkksRnsParams(n=64, moduli_bits=(36, 26), scale_bits=26, special_bits=45, hw=8)
    )
    okeys = other.keygen(0)
    try:
        out = other.decrypt_real(okeys.sk, ct)
    except (ValueError, IndexError, KeyError):
        return  # rejection is fine
    assert np.max(np.abs(out - z)) > 0.5  # garbage is fine too; silence is not
