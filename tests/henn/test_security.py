"""HE-standard parameter validation (Table II checks)."""

import pytest

from repro.ckksrns import CkksRnsParams
from repro.henn.security import HE_STANDARD_TABLE, he_standard_max_logq, validate_security


def test_table_values():
    assert he_standard_max_logq(16384, 128) == 438
    assert he_standard_max_logq(8192, 128) == 218
    assert he_standard_max_logq(4096, 192) == 75


def test_small_n_gets_zero_budget():
    assert he_standard_max_logq(512, 128) == 0


def test_huge_n_extended():
    assert he_standard_max_logq(65536, 128) >= 2 * 881


def test_unknown_level():
    with pytest.raises(ValueError):
        he_standard_max_logq(4096, 100)


def test_paper_table2_is_secure():
    """N = 2^14, log q = 366 + 50-bit special prime <= 438-bit budget."""
    p = CkksRnsParams.paper_table2()
    report = validate_security(p.n, p.log_q + p.special_bits, 128)
    assert report.secure
    assert report.margin_bits >= 0


def test_toy_parameters_flagged_insecure():
    report = validate_security(512, 200, 128)
    assert not report.secure
    assert report.margin_bits < 0
    assert "INSECURE" in str(report) or not report.secure


def test_all_levels_monotone():
    """Higher security level -> smaller modulus budget at each N."""
    for n in HE_STANDARD_TABLE[128]:
        assert (
            HE_STANDARD_TABLE[128][n] > HE_STANDARD_TABLE[192][n] > HE_STANDARD_TABLE[256][n]
        )
