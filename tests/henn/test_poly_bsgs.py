"""BSGS polynomial evaluation: equivalence, batch bit-identity, counters.

The baby-step/giant-step evaluator (``docs/KERNELS.md``) must agree
with direct polynomial evaluation on every backend:

* **mock, unquantized** — BSGS is a plain-float reassociation of the
  same polynomial, so it matches Horner/`polyval` to float rounding;
* **CKKS / CKKS-RNS** — decrypted results match the plaintext
  polynomial within the documented approximation bound for Δ = 2**26;
* **CKKS-RNS batching** — ``poly_eval_many`` packs positions into one
  batched ciphertext per ``(level, scale)`` group and must be
  *bit-identical* to evaluating each handle alone, as must the batched
  ``rescale_many`` / ``add_plain_each`` helpers and ``encrypt_many``.
"""

import numpy as np
import pytest

from repro.ckks import CkksParams
from repro.ckksrns import CkksRnsParams
from repro.henn.backend import CkksBackend, CkksRnsBackend, MockBackend
from repro.nt.kernels import MAX_POLY_DEGREE, compile_poly_program
from repro.obs.metrics import get_registry
from repro.utils.rng import derive_rng

#: Documented decrypt-precision bound for BSGS SLAF evaluation at
#: Δ = 2**26 (see docs/KERNELS.md): noise grows with ct-mult count, so
#: the bound is per-degree rather than one global atol.
REAL_ATOL = {2: 5e-3, 3: 5e-3, 4: 1e-2, 5: 1e-2, 6: 2e-2, 7: 2e-2, 8: 2e-2}


@pytest.fixture(scope="module")
def mock_exact():
    return MockBackend(batch=8, scale_bits=26, levels=12, quantize=False)


@pytest.fixture(scope="module")
def rns():
    return CkksRnsBackend(
        CkksRnsParams(
            n=128, moduli_bits=(36,) + (26,) * 6, scale_bits=26, special_bits=45, hw=16
        ),
        seed=0,
    )


@pytest.fixture(scope="module")
def ckks():
    return CkksBackend(
        CkksParams(n=128, scale_bits=26, q0_bits=40, levels=6, hw=16), seed=0
    )


def _coeffs(rng, degree):
    c = rng.uniform(-0.5, 0.5, degree + 1)
    c[degree] = rng.choice([-1, 1]) * rng.uniform(0.1, 0.4)  # keep true degree
    return c


@pytest.mark.parametrize("degree", range(2, MAX_POLY_DEGREE + 1))
def test_bsgs_matches_polyval_unquantized_mock(mock_exact, degree, rng):
    """On float arithmetic BSGS is a reassociated Horner: results agree to
    the coefficient-encoding grid (~2**-26, the only quantization left)."""
    coeffs = _coeffs(rng, degree)
    x = rng.uniform(-1, 1, 8)
    out = mock_exact.decrypt(mock_exact.poly_eval(mock_exact.encrypt(x), coeffs))
    want = np.polyval(coeffs[::-1], x)
    assert np.allclose(out, want, atol=1e-6)


@pytest.mark.parametrize("degree", range(2, MAX_POLY_DEGREE + 1))
def test_bsgs_real_backends_within_bound(rns, ckks, degree, rng):
    """Decrypted BSGS results track the plaintext polynomial on both schemes."""
    coeffs = _coeffs(rng, degree)
    x = rng.uniform(-1, 1, 8)
    want = np.polyval(coeffs[::-1], x)
    for backend in (rns, ckks):
        got = backend.decrypt(backend.poly_eval(backend.encrypt(x), coeffs), count=8)
        assert np.allclose(got, want, atol=REAL_ATOL[degree]), backend.name


def test_bsgs_final_scale_and_level(rns):
    """BSGS lands at ~Δ scale having consumed exactly program.depth levels."""
    for degree in (2, 3, 5, 8):
        prog = compile_poly_program(degree)
        h = rns.encrypt(np.linspace(-1, 1, 8))
        out = rns.poly_eval(h, np.ones(degree + 1) * 0.1)
        assert rns.level_of(h) - rns.level_of(out) == prog.depth
        assert np.isclose(rns.scale_of(out), rns.scale, rtol=0.05)


def test_poly_eval_many_bitidentical_to_singles(rns, rng):
    """Packed evaluation equals per-handle evaluation down to the last limb."""
    coeffs = np.array([0.1, -0.3, 0.25, 0.2])
    rows = np.tile(coeffs, (5, 1))
    handles = [rns.encrypt(rng.uniform(-1, 1, 8)) for _ in range(5)]
    batched = rns.poly_eval_many(handles, rows)
    singles = [rns.poly_eval_bsgs(h, coeffs) for h in handles]
    for b, s in zip(batched, singles):
        assert np.array_equal(b.c0, s.c0) and np.array_equal(b.c1, s.c1)
        assert b.level == s.level and b.scale == s.scale


def test_poly_eval_many_per_row_coeffs(rns, rng):
    """Per-position coefficient rows (the per-channel SLAF path) batch exactly."""
    rows = np.array([[0.1, 0.5, -0.2, 0.3], [0.0, -0.4, 0.1, 0.2], [0.2, 0.2, 0.2, 0.1]])
    handles = [rns.encrypt(rng.uniform(-1, 1, 8)) for _ in range(3)]
    batched = rns.poly_eval_many(handles, rows)
    for b, h, row in zip(batched, handles, rows):
        s = rns.poly_eval_bsgs(h, row)
        assert np.array_equal(b.c0, s.c0) and np.array_equal(b.c1, s.c1)


def test_poly_eval_many_mixed_levels(rns, rng):
    """Handles at different (level, scale) split into groups, still exact."""
    coeffs = np.array([0.1, 0.4, -0.3])
    hs = [rns.encrypt(rng.uniform(-1, 1, 8)) for _ in range(4)]
    hs[1] = rns.rescale(rns.mul_plain_scalar(hs[1], 0.5))
    hs[3] = rns.rescale(rns.mul_plain_scalar(hs[3], 0.25))
    batched = rns.poly_eval_many(hs, np.tile(coeffs, (4, 1)))
    for b, h in zip(batched, hs):
        s = rns.poly_eval_bsgs(h, coeffs)
        assert np.array_equal(b.c0, s.c0) and np.array_equal(b.c1, s.c1)


def test_rescale_many_and_add_plain_each_bitidentical(rns, rng):
    hs = [
        rns.mul_plain_scalar(rns.encrypt(rng.uniform(-1, 1, 8)), 0.5)
        for _ in range(4)
    ]
    batched = rns.rescale_many(hs)
    singles = [rns.rescale(h) for h in hs]
    for b, s in zip(batched, singles):
        assert np.array_equal(b.c0, s.c0) and np.array_equal(b.c1, s.c1)
    values = rng.uniform(-1, 1, 4)
    badd = rns.add_plain_each(batched, values)
    sadd = [rns.add_plain(s, float(v)) for s, v in zip(singles, values)]
    for b, s in zip(badd, sadd):
        assert np.array_equal(b.c0, s.c0) and np.array_equal(b.c1, s.c1)


def test_encrypt_many_bitidentical_to_sequential(rns, rng):
    """Batched encryption replays the sequential randomness order exactly."""
    ctx, pk = rns.ctx, rns.keys.pk
    rows = [rng.uniform(-1, 1, 8) for _ in range(3)]
    r1 = derive_rng(123)
    seq = [ctx.encrypt(pk, r, r1) for r in rows]
    r2 = derive_rng(123)
    batched = ctx.encrypt_many(pk, rows, r2)
    for b, s in zip(batched, seq):
        assert np.array_equal(b.c0, s.c0) and np.array_equal(b.c1, s.c1)


def test_bsgs_counters_incremented(rns, rng):
    reg = get_registry()
    evals0 = reg.counter("poly.bsgs.evals").value
    mults0 = reg.counter("poly.bsgs.ct_mults").value
    rns.poly_eval(rns.encrypt(rng.uniform(-1, 1, 8)), np.array([0.1, 0.2, 0.3, 0.1]))
    assert reg.counter("poly.bsgs.evals").value == evals0 + 1
    assert reg.counter("poly.bsgs.ct_mults").value == mults0 + compile_poly_program(3).ct_mults
