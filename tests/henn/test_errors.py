"""§III.C error analysis: the paper's worked example and ReLU leakage."""

import numpy as np
import pytest

from repro.henn.errors import (
    approx_sign,
    encoding_error_sweep,
    paper_encoding_example,
    relu_from_sign,
    relu_negative_leakage,
)


def test_paper_example_small_slot_destroyed():
    """Encoding (0.1, -0.01) at Δ=64, M=8 loses the small slot (§III.C)."""
    result = paper_encoding_example()
    errs = result["abs_error"]
    # the small slot's relative error is catastrophic
    assert errs[1] > 0.005  # absolute error comparable to the value itself
    assert errs[1] / 0.01 > 0.5
    # the large slot survives reasonably
    assert errs[0] / 0.1 < 0.2
    # integer coefficients really are tiny at Δ=64
    assert np.max(np.abs(result["coeffs"])) < 10


def test_increasing_delta_reduces_error():
    sweep = encoding_error_sweep([2.0**6, 2.0**12, 2.0**20, 2.0**26])
    errors = [e for _, e in sweep]
    assert errors == sorted(errors, reverse=True)
    assert errors[-1] < 1e-6


def test_approx_sign_converges_away_from_zero():
    xs = np.array([-0.9, -0.5, -0.2, 0.2, 0.5, 0.9])
    s = approx_sign(xs, iterations=10)
    assert np.allclose(s, np.sign(xs), atol=1e-3)


def test_approx_sign_slow_near_zero():
    assert abs(approx_sign(np.array([0.001]), iterations=5)[0]) < 0.5


def test_relu_leaks_positive_for_negative_inputs():
    """The paper's claim: polynomial ReLU(x) > 0 for some x < 0."""
    leak = relu_negative_leakage(degree=7)
    assert leak > 0.0
    # and the approximation is still decent overall
    xs = np.linspace(-1, 1, 101)
    err = np.abs(relu_from_sign(xs, 9) - np.maximum(xs, 0))
    assert np.median(err) < 0.05


def test_more_iterations_reduce_leakage():
    assert relu_negative_leakage(degree=11) <= relu_negative_leakage(degree=5)
