"""Single-image (Lo-La-style) packing: dense layers via rotate-and-sum."""

import numpy as np
import pytest

from repro.ckksrns import CkksRnsParams
from repro.henn.backend import CkksRnsBackend, MockBackend
from repro.henn.packing import (
    decrypt_scores,
    dense_single,
    encrypt_features,
    rotations_needed,
)


def test_rotations_needed():
    assert rotations_needed(8) == (4, 2, 1)
    assert rotations_needed(5) == (4, 2, 1)  # padded to 8
    assert rotations_needed(1) == ()


def test_dense_single_mock_matches_matvec(rng):
    backend = MockBackend(batch=32, levels=6)
    x = rng.uniform(-1, 1, 10)
    w = rng.uniform(-1, 1, (4, 10))
    b = rng.uniform(-1, 1, 4)
    h, nf = encrypt_features(backend, x)
    outs = dense_single(backend, h, nf, w, b)
    got = decrypt_scores(backend, outs)
    assert np.allclose(got, w @ x + b, atol=1e-4)


def test_dense_single_real_rns(rng):
    backend = CkksRnsBackend(
        CkksRnsParams(n=64, moduli_bits=(36, 26, 26), scale_bits=26, special_bits=45, hw=8),
        seed=0,
    )
    x = rng.uniform(-1, 1, 12)
    w = rng.uniform(-1, 1, (3, 12))
    h, nf = encrypt_features(backend, x)
    outs = dense_single(backend, h, nf, w)
    got = decrypt_scores(backend, outs)
    assert np.allclose(got, w @ x, atol=5e-3)


def test_encrypt_features_capacity():
    backend = MockBackend(batch=8)
    with pytest.raises(ValueError):
        encrypt_features(backend, np.zeros(9))


def test_dense_single_validation(rng):
    backend = MockBackend(batch=16, levels=4)
    h, nf = encrypt_features(backend, rng.uniform(-1, 1, 6))
    with pytest.raises(ValueError):
        dense_single(backend, h, nf, np.zeros((2, 7)))


def test_rotation_backend_support(rng):
    from repro.henn.backend import HeBackend

    class Stub(HeBackend):
        scale = 1.0
        max_batch = 4

        def encrypt(self, v):
            return v

        def decrypt(self, h, count=None):
            return h

        add = add_plain = mul_plain_scalar = mul = square = rescale = (
            lambda self, *a, **k: None
        )
        scale_of = level_of = lambda self, a: 0

    with pytest.raises(NotImplementedError):
        Stub().rotate(None, 1)
    with pytest.raises(NotImplementedError):
        Stub().mul_plain_vector(None, np.zeros(2))
