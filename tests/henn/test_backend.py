"""Backend interface: mock semantics and mock/real agreement."""

import numpy as np
import pytest

from repro.ckksrns import CkksRnsParams
from repro.henn.backend import CkksRnsBackend, MockBackend


@pytest.fixture(scope="module")
def mock():
    return MockBackend(batch=8, scale_bits=26, levels=10)


@pytest.fixture(scope="module")
def real():
    return CkksRnsBackend(
        CkksRnsParams(n=128, moduli_bits=(36,) + (26,) * 6, scale_bits=26, special_bits=45, hw=16),
        seed=0,
    )


def test_mock_roundtrip(mock, rng):
    v = rng.uniform(-1, 1, 8)
    h = mock.encrypt(v)
    assert np.allclose(mock.decrypt(h), v, atol=1e-6)
    assert mock.level_of(h) == 10
    assert mock.scale_of(h) == mock.scale


def test_mock_batch_capacity(mock):
    with pytest.raises(ValueError):
        mock.encrypt(np.zeros(9))


def test_mock_depth_overflow_detected(mock, rng):
    h = mock.encrypt(rng.uniform(-1, 1, 4))
    for _ in range(10):
        h = mock.rescale(mock.mul_plain_scalar(h, 1.0))
    with pytest.raises(ValueError, match="depth"):
        mock.rescale(mock.mul_plain_scalar(h, 1.0))


def test_mock_scale_tracking(mock, rng):
    h = mock.encrypt(rng.uniform(-1, 1, 4))
    h2 = mock.mul_plain_scalar(h, 0.5)
    assert mock.scale_of(h2) == mock.scale**2
    h3 = mock.rescale(h2)
    assert mock.scale_of(h3) == mock.scale


def test_mock_scale_mismatch_add(mock, rng):
    h = mock.encrypt(rng.uniform(-1, 1, 4))
    with pytest.raises(ValueError):
        mock.add(h, mock.mul_plain_scalar(h, 1.0))


def test_weighted_sum_default_vs_override(real, mock, rng):
    """The RNS fast-path weighted_sum matches the generic pairwise one."""
    vs = [rng.uniform(-1, 1, 8) for _ in range(6)]
    ws = rng.uniform(-1, 1, 6)
    hs_real = [real.encrypt(v) for v in vs]
    fast = real.decrypt(real.weighted_sum(hs_real, ws), count=8)
    generic = real.decrypt(
        super(CkksRnsBackend, real).weighted_sum(hs_real, ws), count=8
    )
    want = sum(w * v for w, v in zip(ws, vs))
    assert np.allclose(fast, want, atol=1e-3)
    assert np.allclose(fast, generic, atol=1e-3)


def test_weighted_sum_zero_weights(real, rng):
    vs = [rng.uniform(-1, 1, 8) for _ in range(3)]
    hs = [real.encrypt(v) for v in vs]
    out = real.decrypt(real.weighted_sum(hs, np.zeros(3)), count=8)
    assert np.allclose(out, 0.0, atol=1e-3)


def test_weighted_sum_validation(mock):
    with pytest.raises(ValueError):
        mock.weighted_sum([], np.array([]))
    h = mock.encrypt(np.zeros(4))
    with pytest.raises(ValueError):
        mock.weighted_sum([h], np.array([1.0, 2.0]))


@pytest.mark.parametrize("coeffs", [[0.1, 0.9], [0.3, -0.5, 0.2], [0.05, 0.5, 0.0, 0.25]])
def test_poly_eval_mock_matches_numpy(mock, coeffs, rng):
    x = rng.uniform(-1, 1, 8)
    h = mock.encrypt(x)
    out = mock.decrypt(mock.poly_eval(h, np.array(coeffs)))
    want = sum(c * x**k for k, c in enumerate(coeffs))
    assert np.allclose(out, want, atol=1e-5)


def test_poly_eval_real_matches_mock(real, mock, rng):
    coeffs = np.array([0.2, -0.4, 0.3, 0.15])
    x = rng.uniform(-1, 1, 8)
    hr = real.encrypt(x)
    hm = mock.encrypt(x)
    got_r = real.decrypt(real.poly_eval(hr, coeffs), count=8)
    got_m = mock.decrypt(mock.poly_eval(hm, coeffs))
    assert np.allclose(got_r, got_m, atol=5e-3)


def test_poly_eval_degree_bounds(mock, rng):
    h = mock.encrypt(rng.uniform(-1, 1, 4))
    with pytest.raises(ValueError):
        mock.poly_eval(h, np.array([1.0]))  # degree 0
    with pytest.raises(ValueError):
        mock.poly_eval(h, np.ones(10))  # degree 9 > MAX_POLY_DEGREE


def test_poly_eval_consumes_degree_levels(mock, rng):
    h = mock.encrypt(rng.uniform(-1, 1, 4))
    out = mock.poly_eval(h, np.array([0.0, 1.0, 1.0, 1.0]))
    assert mock.level_of(h) - mock.level_of(out) == 3


def test_real_backend_square_mul(real, rng):
    x = rng.uniform(-1, 1, 8)
    h = real.encrypt(x)
    sq = real.decrypt(real.rescale(real.square(h)), count=8)
    assert np.allclose(sq, x * x, atol=2e-3)
    mu = real.decrypt(real.rescale(real.mul(h, h)), count=8)
    assert np.allclose(mu, x * x, atol=2e-3)
