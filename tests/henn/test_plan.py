"""Inference plans: bit-identity with the unplanned path, cache behaviour."""

import numpy as np
import pytest

from repro.ckks import CkksParams
from repro.ckksrns import CkksRnsParams
from repro.henn.backend import CkksBackend, CkksRnsBackend, MockBackend
from repro.henn.inference import HeInferenceEngine
from repro.henn.layers import HeAvgPool, HeConv2d, HeFlatten, HeLinear, HePoly
from repro.henn.plan import _backend_sig, compile_plan, plan_cache_key
from repro.obs.metrics import get_registry
from repro.utils.cache import PlaintextCache

IN_SHAPE = (1, 6, 6)


def _tiny_layers(seed=0):
    """conv(2x1x3x3) -> square-ish poly -> flatten -> linear(10): depth 4."""
    rng = np.random.default_rng(seed)
    conv_w = rng.uniform(-0.5, 0.5, (2, 1, 3, 3))
    conv_b = rng.uniform(-0.1, 0.1, 2)
    lin_w = rng.uniform(-0.3, 0.3, (10, 32))
    lin_b = rng.uniform(-0.1, 0.1, 10)
    return [
        HeConv2d(conv_w, conv_b),
        HePoly(np.array([0.1, 0.5, 0.25])),
        HeFlatten(),
        HeLinear(lin_w, lin_b),
    ]


def _images(batch, seed=1):
    return np.random.default_rng(seed).uniform(0, 1, (batch,) + IN_SHAPE)


# -- bit-identity -----------------------------------------------------------


def test_planned_matches_unplanned_mock():
    backend = MockBackend(batch=8, scale_bits=26, levels=5)
    layers = _tiny_layers()
    x = _images(8)
    cold = HeInferenceEngine(backend, layers, IN_SHAPE, plan=False).classify(x)
    warm = HeInferenceEngine(backend, layers, IN_SHAPE, plan=True).classify(x)
    assert np.array_equal(cold, warm)


@pytest.mark.parametrize("make_backend", [
    lambda: CkksBackend(
        CkksParams(n=128, scale_bits=24, q0_bits=36, levels=5, hw=16), seed=0
    ),
    lambda: CkksRnsBackend(
        CkksRnsParams(
            n=128, moduli_bits=(36, 26, 26, 26, 26, 26), scale_bits=26,
            special_bits=45, hw=16,
        ),
        seed=0,
    ),
], ids=["ckks", "ckks-rns"])
def test_planned_matches_unplanned_real(make_backend):
    """Same backend, same ciphertexts: planned evaluation must produce
    bit-identical logits to the fresh-encode path."""
    backend = make_backend()
    layers = _tiny_layers()
    x = _images(4)
    unplanned = HeInferenceEngine(backend, layers, IN_SHAPE, plan=False)
    enc = unplanned.encrypt_images(x)
    out_cold = unplanned.run_encrypted(enc)
    # Building the planned engine second: the cold run above used truly
    # fresh encodes (no cache was installed on the context yet).
    planned = HeInferenceEngine(backend, layers, IN_SHAPE, plan=True)
    out_warm = planned.run_encrypted(enc)
    cold = np.stack([backend.decrypt(h, count=4) for h in out_cold], axis=1)
    warm = np.stack([backend.decrypt(h, count=4) for h in out_warm], axis=1)
    assert np.array_equal(cold, warm)


def test_planned_avgpool_matches_unplanned():
    backend = MockBackend(batch=4, scale_bits=26, levels=6)
    rng = np.random.default_rng(2)
    layers = [
        HeConv2d(rng.uniform(-0.5, 0.5, (2, 1, 3, 3)), None),
        HeAvgPool(2),
        HeFlatten(),
        HeLinear(rng.uniform(-0.3, 0.3, (10, 8)), None),
    ]
    x = _images(4)
    cold = HeInferenceEngine(backend, layers, IN_SHAPE, plan=False).classify(x)
    warm = HeInferenceEngine(backend, layers, IN_SHAPE, plan=True).classify(x)
    assert np.array_equal(cold, warm)


def test_planned_pruned_layers_match():
    """Pruned conv/linear (including fully-pruned rows) replay identically."""
    backend = MockBackend(batch=4, scale_bits=26, levels=5)
    rng = np.random.default_rng(3)
    lin_w = rng.uniform(-0.3, 0.3, (10, 32))
    lin_w[7] = 1e-9  # fully pruned row -> zero-weight fallback program
    layers = [
        HeConv2d(rng.uniform(-0.5, 0.5, (2, 1, 3, 3)), None, prune_below=0.2),
        HeFlatten(),
        HeLinear(lin_w, None, prune_below=0.05),
    ]
    x = _images(4)
    cold = HeInferenceEngine(backend, layers, IN_SHAPE, plan=False).classify(x)
    warm = HeInferenceEngine(backend, layers, IN_SHAPE, plan=True).classify(x)
    assert np.array_equal(cold, warm)


# -- cache keys -------------------------------------------------------------


def test_backend_signature_changes_with_params():
    base = CkksRnsParams(
        n=128, moduli_bits=(36, 26, 26, 26, 26), scale_bits=26, special_bits=45, hw=16
    )
    b0 = CkksRnsBackend(base, seed=0)
    sig0 = _backend_sig(b0)
    assert sig0 == _backend_sig(CkksRnsBackend(base, seed=1))  # keys don't matter
    b_n = CkksRnsBackend(
        CkksRnsParams(
            n=64, moduli_bits=(36, 26, 26, 26, 26), scale_bits=26, special_bits=45, hw=8
        ),
        seed=0,
    )
    assert _backend_sig(b_n) != sig0  # ring degree changes the signature
    b_chain = CkksRnsBackend(
        CkksRnsParams(
            n=128, moduli_bits=(36, 26, 26, 26), scale_bits=26, special_bits=45, hw=16
        ),
        seed=0,
    )
    assert _backend_sig(b_chain) != sig0  # modulus chain changes the signature
    b_scale = MockBackend(batch=4, scale_bits=20, levels=5)
    assert _backend_sig(b_scale) != _backend_sig(MockBackend(batch=4, scale_bits=26, levels=5))


def test_plan_cache_key_components():
    sig = ("mock", 2.0**26, 5)
    k0 = plan_cache_key(sig, 2.0**26, (1, 2, 3))
    assert k0 == plan_cache_key(sig, 2.0**26, (1, 2, 3))
    assert k0 != plan_cache_key(sig, 2.0**24, (1, 2, 3))  # plain scale
    assert k0 != plan_cache_key(sig, 2.0**26, (1, 2, 4))  # quantized weights
    assert k0 != plan_cache_key(("mock", 2.0**26, 6), 2.0**26, (1, 2, 3))  # signature


def test_scalar_cache_misses_across_levels(rns_ctx, rns_keys, rng):
    """The same scalar at two levels must occupy two cache entries."""
    cache = PlaintextCache()
    rns_ctx.plain_cache = cache
    try:
        z = rng.uniform(-1, 1, rns_ctx.slots)
        ct = rns_ctx.encrypt(rns_keys.pk, z, 11)
        n0 = len(cache)
        rns_ctx.add_plain(ct, 0.25)
        assert len(cache) == n0 + 1
        rns_ctx.add_plain(ct, 0.25)  # same level: hit, no new entry
        assert len(cache) == n0 + 1
        lower = rns_ctx.mod_switch_to(ct, ct.level - 1)
        rns_ctx.add_plain(lower, 0.25)  # lower level: key misses
        assert len(cache) == n0 + 2
    finally:
        rns_ctx.plain_cache = None


def test_tap_encodings_deduplicated():
    """All interior conv positions share one kernel: the plan must encode
    it once per output channel, not once per position."""
    backend = MockBackend(batch=4, scale_bits=26, levels=5)
    layers = _tiny_layers()
    plan = compile_plan(backend, layers, IN_SHAPE)
    positions = sum(len(p) for p in plan.layers[0].programs)
    assert positions == 2 * 4 * 4
    # 2 conv kernels + 10 linear rows = 12 distinct encodings.
    assert len(plan.cache) == 12
    hits = get_registry().counter("plan.cache.hit").value
    assert hits > 0


# -- warm-path counters ------------------------------------------------------


def test_warm_classify_zero_fresh_encodes():
    """Classify #1 fills the scalar cache; classify #2 must encode nothing."""
    backend = CkksRnsBackend(
        CkksRnsParams(
            n=128, moduli_bits=(36, 26, 26, 26, 26, 26), scale_bits=26,
            special_bits=45, hw=16,
        ),
        seed=0,
    )
    eng = HeInferenceEngine(backend, _tiny_layers(), IN_SHAPE, plan=True)
    x = _images(4)
    eng.classify(x)  # cold: misses allowed
    reg = get_registry()
    fresh0 = reg.counter("plan.encode.fresh").value
    miss0 = reg.counter("plan.cache.miss").value
    eng.classify(x)  # warm
    assert reg.counter("plan.encode.fresh").value == fresh0
    assert reg.counter("plan.cache.miss").value == miss0


def test_plan_reused_across_engines():
    """An adopted plan object skips recompilation and still evaluates."""
    backend = MockBackend(batch=4, scale_bits=26, levels=5)
    layers = _tiny_layers()
    plan = compile_plan(backend, layers, IN_SHAPE)
    eng = HeInferenceEngine(backend, layers, IN_SHAPE, plan=plan)
    assert eng.plan is plan
    logits = eng.classify(_images(4))
    assert logits.shape == (4, 10)


def test_planned_trace_keeps_source_layer_names():
    backend = MockBackend(batch=4, scale_bits=26, levels=5)
    layers = _tiny_layers()
    eng = HeInferenceEngine(backend, layers, IN_SHAPE, plan=True)
    eng.classify(_images(4))
    assert eng.trace.names == [type(l).__name__ for l in layers]
