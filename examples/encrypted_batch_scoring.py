"""Domain scenario: encrypted batch scoring for a regulated data holder.

Motivation from the paper's introduction: a hospital/bank must classify
records it is not allowed to reveal to its cloud provider.  This example
shows the *throughput* story of SIMD packing — one homomorphic network
evaluation classifies an entire batch (slot i = record i) — and
contrasts CNN-HE (multiprecision CKKS) with CNN-HE-RNS on identical
inputs (Tables III shape).

Run:  python examples/encrypted_batch_scoring.py
"""

import time

import numpy as np

from repro.ckks import CkksParams
from repro.ckksrns import CkksRnsParams
from repro.data import load_synth_mnist, normalize_unit, to_nchw
from repro.henn import CkksBackend, CkksRnsBackend, build_cnn1, compile_model, slafify
from repro.henn.compiler import model_depth
from repro.henn.inference import HeInferenceEngine
from repro.nn import TrainConfig, Trainer


def main() -> None:
    xtr, ytr, xte, yte = load_synth_mnist(n_train=3000, n_test=256, seed=11, image_size=12)
    x, xv = to_nchw(normalize_unit(xtr)), to_nchw(normalize_unit(xte))
    model = build_cnn1(variant="tiny", seed=0)
    Trainer(model, TrainConfig(epochs=8, batch_size=64, max_lr=0.08, seed=0)).fit(x, ytr)
    slaf = slafify(model, x, ytr, epochs=2, per_channel=True, seed=0)
    layers = compile_model(slaf)
    depth = model_depth(layers)

    batch = 32  # one ciphertext batch = 32 records scored together
    imgs, labels = xv[:batch], yte[:batch]

    print(f"scoring {batch} encrypted records (depth-{depth} CNN1, degree-3 SLAF)\n")
    results = {}
    for name, backend in (
        (
            "CNN1-HE  (multiprecision CKKS)",
            CkksBackend(CkksParams(n=256, scale_bits=26, q0_bits=40, levels=depth, hw=32), seed=0),
        ),
        (
            "CNN1-HE-RNS (CKKS-RNS)",
            CkksRnsBackend(
                CkksRnsParams(n=256, moduli_bits=(40,) + (26,) * depth, special_bits=49, hw=32),
                seed=0,
            ),
        ),
    ):
        engine = HeInferenceEngine(backend, layers, (1, 12, 12))
        t0 = time.perf_counter()
        logits = engine.classify(imgs)
        dt = time.perf_counter() - t0
        acc = float((logits.argmax(1) == labels).mean())
        results[name] = (dt, acc, logits.argmax(1))
        print(f"  {name}")
        print(f"    wall-clock {dt:6.2f} s  ({batch / dt:5.1f} records/s)   accuracy {acc:.3f}")

    (he_name, rns_name) = results.keys()
    he, rns = results[he_name], results[rns_name]
    assert np.array_equal(he[2], rns[2]), "both schemes must classify identically"
    print(f"\n  identical predictions under both schemes: True")
    print(f"  RNS speed-up: {100 * (1 - rns[0] / he[0]):.1f}% (paper Table III: 36.2%)")


if __name__ == "__main__":
    main()
