"""Batched serving: many concurrent clients, one coalescing gateway.

Eight closed-loop clients fire single-image encrypted classification
requests at a :class:`~repro.henn.protocol.BatchedCloudService`.  The
gateway admits them into a bounded queue, packs waiting requests into
the SIMD slots of one batch, evaluates the CNN **once** per batch, and
splits the encrypted scores back per request — so throughput scales
with concurrency while each client still just calls
``classify_with_retry`` (which also backs off politely if the queue is
full).  A serial :class:`~repro.henn.protocol.CloudService` classifies
the same images for the throughput comparison and to show the batched
scores are identical.

Run:  python examples/batched_serving.py
"""

import threading
import time

import numpy as np

from repro.data import load_synth_mnist, normalize_unit, to_nchw
from repro.henn import MockBackend, build_cnn1, compile_model, slafify
from repro.henn.compiler import model_depth
from repro.henn.protocol import BatchedCloudService, Client, CloudService
from repro.obs.metrics import get_registry

CLIENTS = 8
REQUESTS_EACH = 5
SHAPE = (1, 12, 12)


def main() -> None:
    print("== 1. train + compile CNN1 (SLAF activations, BN folded) ==")
    xtr, ytr, xte, yte = load_synth_mnist(n_train=4000, n_test=500, seed=1, image_size=12)
    x, xv = to_nchw(normalize_unit(xtr)), to_nchw(normalize_unit(xte))
    from repro.nn import TrainConfig, Trainer

    model = build_cnn1(variant="tiny", seed=0)
    Trainer(model, TrainConfig(epochs=6, batch_size=64, max_lr=0.08, seed=0)).fit(x, ytr)
    layers = compile_model(slafify(model, x, ytr, degree=3, epochs=2, seed=0))
    backend = MockBackend(batch=64, levels=model_depth(layers) + 1)
    client = Client(backend, SHAPE)

    print("== 2. serial baseline: one request per evaluation ==")
    serial = CloudService(backend, layers, SHAPE)
    t0 = time.perf_counter()
    predictions = []
    for c in range(CLIENTS):
        response = serial.try_classify(client.encrypt_request(xv[c : c + 1]))
        assert response.ok
        predictions.append(int(client.decrypt_response(response.scores, 1).argmax()))
    serial_rate = CLIENTS / (time.perf_counter() - t0)
    print(f"   {serial_rate:.1f} images/sec; predictions {predictions} (true {yte[:CLIENTS].tolist()})")

    print(f"== 3. gateway up: {CLIENTS} concurrent clients x {REQUESTS_EACH} requests ==")
    gateway = BatchedCloudService(
        backend, layers, SHAPE, max_batch_slots=16, max_wait_ms=5.0, max_queue_depth=32
    )
    results = [[None] * REQUESTS_EACH for _ in range(CLIENTS)]

    def client_loop(c: int) -> None:
        for r in range(REQUESTS_EACH):
            # full protocol round trip incl. overload backoff
            logits = client.classify_with_retry(
                gateway, xv[c : c + 1], max_attempts=5, backoff_seconds=0.01
            )
            results[c][r] = int(logits.argmax())

    threads = [threading.Thread(target=client_loop, args=(c,)) for c in range(CLIENTS)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    batched_rate = CLIENTS * REQUESTS_EACH / (time.perf_counter() - t0)

    print("== 4. what the gateway did ==")
    stats = gateway.scheduler.stats()
    print(f"   {batched_rate:.1f} images/sec ({batched_rate / serial_rate:.1f}x serial)")
    print(
        f"   {stats['requests_completed']} requests in {stats['batches']} batches "
        f"(mean batch {stats['mean_batch_size']:.1f}, "
        f"slot utilization {stats['last_slot_utilization']:.0%})"
    )
    wait = get_registry().histogram("serving.batch.wait_seconds").summary()
    print(f"   coalescing wait: p50 {wait['p50'] * 1e3:.1f} ms, p99 {wait['p99'] * 1e3:.1f} ms")

    print("== 5. batched == serial, request by request ==")
    for c in range(CLIENTS):
        assert all(p == predictions[c] for p in results[c]), f"client {c} diverged"
    print(f"   all {CLIENTS * REQUESTS_EACH} batched predictions match the serial baseline")
    gateway.close()


if __name__ == "__main__":
    main()
