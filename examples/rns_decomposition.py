"""Fig. 2 / Fig. 5 walk-through: RNS decomposition of a convolution.

Shows the paper's mechanism on real numbers: an image is quantised to
wide fixed-point integers, decomposed into co-prime residue channels,
convolved independently per channel, and recomposed exactly by CRT —
then compares the k-channel latency profile (Tables IV/VI mechanism).

Run:  python examples/rns_decomposition.py
"""

import time

import numpy as np

from repro.data import load_synth_mnist, normalize_unit
from repro.henn.rnscnn import QuantizedConvSpec, RnsIntegerConv, basis_for_budget
from repro.rns import RnsBase, rns_decompose, rns_recompose_signed


def main() -> None:
    print("== Fig. 2: a number becomes residues; ops act componentwise ==")
    base = RnsBase.from_bit_sizes([26, 26, 26], 64)
    x = np.array([123456789, -987654321])
    channels = rns_decompose(x, base)
    print(f"   moduli: {base.moduli}")
    for i, m in enumerate(base.moduli):
        print(f"   x mod {m} = {channels[i]}")
    print(f"   CRT recompose -> {rns_recompose_signed(channels, base)} (exact)")

    print("\n== Fig. 5: decompose -> parallel conv channels -> recompose ==")
    xtr, *_ = load_synth_mnist(n_train=64, n_test=10, seed=3)
    imgs = normalize_unit(xtr)
    rng = np.random.default_rng(0)
    weight = rng.normal(0, 0.3, (5, 1, 5, 5))
    spec = QuantizedConvSpec(input_bits=116, weight_bits=104)

    ref = None
    print(f"   {'k':>3} {'bits/prime':>11} {'latency':>10}  exact")
    for k in (1, 3, 5, 9, 10):
        conv = RnsIntegerConv(
            weight, basis_for_budget(k, 232), stride=2, padding=1, spec=spec
        )
        t0 = time.perf_counter()
        out = conv.forward(imgs) if k > 1 else conv.forward_direct(imgs)
        dt = time.perf_counter() - t0
        if ref is None:
            ref = out
        exact = np.allclose(out, ref)
        bits = conv.base.moduli[0].bit_length()
        print(f"   {k:>3} {bits:>11} {dt * 1e3:>8.1f}ms  {exact}")
    print("   (k = 1 is the non-decomposed multiprecision baseline)")


if __name__ == "__main__":
    main()
