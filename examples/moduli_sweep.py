"""Tables IV/VI mechanism: latency across moduli-chain lengths.

Sweeps the number of co-prime moduli the convolution stage is
decomposed into, at a fixed total precision budget (~232 bits, like the
paper's log q = 366 at Table II scale).  k = 1 is the non-decomposed
multiprecision baseline; the paper finds a minimum at k = 9.

Run:  python examples/moduli_sweep.py
"""

import time

import numpy as np

from repro.henn.rnscnn import QuantizedConvSpec, RnsIntegerConv, basis_for_budget


def main() -> None:
    rng = np.random.default_rng(0)
    weight = rng.normal(0, 0.3, (5, 1, 5, 5))  # CNN1's conv geometry
    imgs = rng.random((128, 28, 28))
    spec = QuantizedConvSpec(input_bits=116, weight_bits=104)

    print("conv stage (5 maps, 5x5, s2, 28x28, batch 128), 232-bit budget\n")
    print(f"{'k':>3} {'bits/prime':>11} {'limbs':>6} {'latency (ms)':>13}")
    ref, best = None, (None, float("inf"))
    for k in [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]:
        base = basis_for_budget(k, 232)
        conv = RnsIntegerConv(weight, base, stride=2, padding=1, spec=spec)
        samples = []
        for _ in range(3):
            t0 = time.perf_counter()
            out = conv.forward(imgs) if k > 1 else conv.forward_direct(imgs)
            samples.append(time.perf_counter() - t0)
        dt = min(samples)
        if ref is None:
            ref = out
        assert np.allclose(out, ref), "RNS decomposition must be exact"
        from repro.rns.limb import n_limbs

        bits = base.moduli[0].bit_length()
        print(f"{k:>3} {bits:>11} {n_limbs(base.moduli[0]):>6} {dt * 1e3:>13.1f}")
        if dt < best[1]:
            best = (k, dt)
    print(f"\nminimum at k = {best[0]} ({best[1] * 1e3:.1f} ms); paper's minimum: k = 9")
    print("(all configurations produce bit-identical outputs — accuracy is unaffected)")
    print("note: among the *decomposed* configurations the best k sits at the")
    print("word-size crossover (~232/28 = 9); on a single-core host the k = 1")
    print("vectorised big-int baseline stays competitive because the paper's")
    print("3..8 gains come from multicore channel parallelism (EXPERIMENTS.md).")


if __name__ == "__main__":
    main()
