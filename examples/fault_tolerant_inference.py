"""Fault-tolerant inference: classify through an injected channel fault.

A trained CNN1 runs the Fig. 5 hybrid pipeline with two redundant RRNS
moduli on the conv stage. A seeded fault injector corrupts one residue
channel mid-classification; the CRT consistency check detects it, the
projection test localises it, and the result is reconstructed from the
surviving channels — the logits match the fault-free run exactly. A
second pass drops a channel outright (a "crashed worker") with the same
outcome, and the `resilience.*` counters from `repro.obs` show every
step.

Run:  python examples/fault_tolerant_inference.py
"""

import numpy as np

from repro.data import load_synth_mnist, normalize_unit, to_nchw
from repro.henn import HybridRnsEngine, MockBackend, build_cnn1, compile_model, slafify
from repro.henn.compiler import model_depth
from repro.nn import TrainConfig, Trainer
from repro.obs.metrics import get_registry
from repro.resilience import FaultInjector


def main() -> None:
    print("== 1. train + compile CNN1 (SLAF activations, BN folded) ==")
    xtr, ytr, xte, yte = load_synth_mnist(n_train=4000, n_test=500, seed=1, image_size=12)
    x, xv = to_nchw(normalize_unit(xtr)), to_nchw(normalize_unit(xte))
    model = build_cnn1(variant="tiny", seed=0)
    Trainer(model, TrainConfig(epochs=6, batch_size=64, max_lr=0.08, seed=0)).fit(x, ytr)
    slaf = slafify(model, x, ytr, degree=3, epochs=2, seed=0)
    layers = compile_model(slaf)
    backend = MockBackend(batch=8, levels=model_depth(layers) + 1)
    image = xv[:1]

    print("== 2. fault-free reference: 3 data + 2 redundant RRNS channels ==")
    engine = HybridRnsEngine(backend, layers, (1, 12, 12), k_moduli=3, redundancy=2)
    reference = engine.classify(image)
    print(f"   prediction: {reference.argmax(1)[0]}   (true label: {yte[0]})")
    print(f"   conv channels evaluated: {engine.conv.rbasis.k} "
          f"({engine.conv.rbasis.k_data} data + {engine.conv.rbasis.r} redundant)")

    print("== 3. corrupt residue channel 1 mid-classification ==")
    inj = FaultInjector(seed=3).corrupt_channel(channel=1, times=1)
    faulty = HybridRnsEngine(
        backend, layers, (1, 12, 12), k_moduli=3, redundancy=2, fault_injector=inj
    )
    logits = faulty.classify(image)
    print(f"   injected: {inj.summary()}")
    print(f"   recovered from channels: {faulty.last_faults}")
    print(f"   prediction: {logits.argmax(1)[0]}  "
          f"(logits identical to fault-free: {bool(np.allclose(logits, reference))})")

    print("== 4. drop channel 0 entirely (simulated worker crash) ==")
    inj2 = FaultInjector(seed=4).corrupt_channel(channel=0, times=1, drop=True)
    dropped = HybridRnsEngine(
        backend, layers, (1, 12, 12), k_moduli=3, redundancy=2, fault_injector=inj2
    )
    logits2 = dropped.classify(image)
    print(f"   injected: {inj2.summary()}")
    print(f"   recovered from channels: {dropped.last_faults}")
    print(f"   logits identical to fault-free: {bool(np.allclose(logits2, reference))}")

    print("== 5. recovery metrics (repro.obs registry) ==")
    reg = get_registry()
    for name in sorted(reg.names()):
        if name.startswith("resilience."):
            print(f"   {name:36s} {reg.counter(name).value}")


if __name__ == "__main__":
    main()
