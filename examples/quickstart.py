"""Quickstart: the Fig. 1 protocol end to end in ~a minute.

Train a small CNN on synthetic MNIST, replace its activations with
trainable polynomials (SLAF), compile it for homomorphic evaluation,
and run a blind classification round-trip: the client encrypts, the
cloud computes on ciphertexts only, the client decrypts.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.ckksrns import CkksRnsParams
from repro.data import load_synth_mnist, normalize_unit, to_nchw
from repro.henn import CkksRnsBackend, build_cnn1, compile_model, slafify
from repro.henn.compiler import model_depth
from repro.henn.protocol import Client, CloudService
from repro.nn import TrainConfig, Trainer


def main() -> None:
    print("== 1. data: synthetic MNIST (offline stand-in, same shapes) ==")
    xtr, ytr, xte, yte = load_synth_mnist(n_train=4000, n_test=500, seed=1, image_size=12)
    x, xv = to_nchw(normalize_unit(xtr)), to_nchw(normalize_unit(xte))

    print("== 2. train CNN1 (ReLU) with the paper's SGD recipe ==")
    model = build_cnn1(variant="tiny", seed=0)
    trainer = Trainer(model, TrainConfig(epochs=10, batch_size=64, max_lr=0.08, seed=0))
    trainer.fit(x, ytr)
    print(f"   ReLU test accuracy: {trainer.evaluate(xv, yte):.4f}")

    print("== 3. SLAF phase: freeze weights, learn degree-3 polynomial activations ==")
    slaf = slafify(model, x, ytr, degree=3, epochs=3, per_channel=True, seed=0)
    print(f"   SLAF test accuracy: {Trainer(slaf).evaluate(xv, yte):.4f}")

    print("== 4. compile: fold BatchNorm, lower to HE layers ==")
    layers = compile_model(slaf)
    depth = model_depth(layers)
    print(f"   multiplicative depth: {depth}")

    print("== 5. Fig. 1 protocol: client encrypts, cloud computes blind ==")
    backend = CkksRnsBackend(
        CkksRnsParams(n=512, moduli_bits=(40,) + (26,) * depth, special_bits=49), seed=0
    )
    client = Client(backend, (1, 12, 12))
    cloud = CloudService(backend, layers, (1, 12, 12))

    batch = xv[:8]
    encrypted = client.encrypt_request(batch)
    encrypted_scores = cloud.classify_encrypted(encrypted)
    logits = client.decrypt_response(encrypted_scores, batch=8)

    plain = Trainer(slaf).predict(batch)
    print(f"   cloud latency: {cloud.last_latency:.2f} s (whole batch, SIMD-packed)")
    print(f"   encrypted predictions: {logits.argmax(1)}")
    print(f"   plaintext predictions: {plain.argmax(1)}")
    print(f"   true labels:           {yte[:8]}")
    agree = (logits.argmax(1) == plain.argmax(1)).mean()
    print(f"   encrypted == plaintext on {agree:.0%} of the batch")


if __name__ == "__main__":
    main()
