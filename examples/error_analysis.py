"""§III.C error analysis, reproduced numerically.

1. The worked encoding example: z = (0.1, -0.01) with M = 8, Δ = 64 —
   the small slot decodes wrong (value and possibly sign).
2. The Δ sweep: larger scaling factors shrink the encoding error.
3. Polynomial ReLU leakage: an approximate ReLU is > 0 for some x < 0.

Run:  python examples/error_analysis.py
"""

import numpy as np

from repro.henn.errors import (
    encoding_error_sweep,
    paper_encoding_example,
    relu_from_sign,
    relu_negative_leakage,
)


def main() -> None:
    print("== III.C worked example: M=8, Δ=64, z=(0.1, -0.01) ==")
    r = paper_encoding_example()
    print(f"   integer polynomial coefficients: {r['coeffs']}")
    decoded = np.real(r["decoded"])
    print(f"   decoded slots: ({decoded[0]:+.5f}, {decoded[1]:+.5f})  vs  (0.10000, -0.01000)")
    print(f"   abs errors:    ({r['abs_error'][0]:.5f}, {r['abs_error'][1]:.5f})")
    print(f"   small slot sign flipped: {r['sign_flipped']}")
    print("   -> values near zero are destroyed by small Δ (the paper's warning")
    print("      about normalising inputs into [0, 1])\n")

    print("== error vs scaling factor Δ ==")
    for delta, err in encoding_error_sweep([2.0**6, 2.0**10, 2.0**16, 2.0**22, 2.0**26]):
        print(f"   Δ = 2^{int(np.log2(delta)):>2}: max roundtrip error {err:.2e}")

    print("\n== polynomial ReLU: leakage on the negative axis ==")
    for d in (3, 5, 7, 11):
        print(f"   degree {d:>2}: max ReLU~(x) for x<0 = {relu_negative_leakage(degree=d):.4f}")
    xs = np.array([-0.8, -0.3, -0.05, 0.05, 0.3, 0.8])
    print(f"   composite-sign ReLU~ at {xs}:")
    print(f"   {np.round(relu_from_sign(xs, 9), 4)}")
    print("   -> exact zero on x<0 is impossible with polynomials; SLAF instead")
    print("      *learns* the polynomial that minimises task loss (§III.B).")


if __name__ == "__main__":
    main()
