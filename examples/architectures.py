"""Figs. 3-5: the CNN1 / CNN2 architectures and their RNS adaptation.

Prints the block diagrams, parameter counts, and the multiplicative-
depth accounting of §V.B (1 level per linear layer, degree per
polynomial activation; CNN2 with degree-3 SLAFs hits L = 13, Table II).

Run:  python examples/architectures.py
"""

import numpy as np

from repro.henn import ascii_diagram, build_cnn1, build_cnn2, compile_model, slafify
from repro.henn.architectures import input_shape_for
from repro.henn.compiler import model_depth


def main() -> None:
    rng = np.random.default_rng(0)
    shape = input_shape_for("full")
    x = rng.uniform(0, 1, (64,) + shape)
    y = rng.integers(0, 10, 64)

    for name, builder, fig in (("CNN1", build_cnn1, "Fig. 3"), ("CNN2", build_cnn2, "Fig. 4")):
        model = builder(variant="full", seed=0)
        print(ascii_diagram(model, f"{name} ({fig})"))
        print(model.summary())
        slaf = slafify(model, x, y, degree=3, epochs=1, seed=0)
        depth = model_depth(compile_model(slaf))
        print(f"  multiplicative depth with degree-3 SLAF: {depth}\n")

    print(ascii_diagram(build_cnn2(variant="full", seed=0), "CNN2-RNS (Fig. 5b)", rns_channels=3))
    print("\n(Table II uses L = 13 — exactly CNN2's depth with degree-3 activations.)")


if __name__ == "__main__":
    main()
