"""Monitored inference: the full serving-telemetry surface on one run.

A CNN1-HE-RNS engine classifies one encrypted batch behind the Fig. 1
protocol with every observability layer switched on: ciphertext-health
gauges at each layer boundary, a decrypt-side precision probe against
the plaintext reference, structured JSON request logs, and live
``/metrics`` + ``/healthz`` endpoints scraped over HTTP. The run dumps
its artifacts — Prometheus text, the versioned JSON trace, the log
lines — into ``monitored_artifacts/`` for inspection.

Run:  python examples/monitored_inference.py
"""

import json
import urllib.request
from pathlib import Path

import numpy as np

from repro import obs
from repro.data import load_synth_mnist, normalize_unit, to_nchw
from repro.henn import MockBackend, build_cnn1, compile_model, slafify
from repro.henn.compiler import model_depth
from repro.henn.protocol import Client, CloudService
from repro.nn import TrainConfig, Trainer

OUT = Path(__file__).resolve().parent / "monitored_artifacts"


def main() -> None:
    print("== 1. train + compile CNN1 (SLAF activations, BN folded) ==")
    xtr, ytr, xte, yte = load_synth_mnist(n_train=4000, n_test=500, seed=1, image_size=12)
    x, xv = to_nchw(normalize_unit(xtr)), to_nchw(normalize_unit(xte))
    model = build_cnn1(variant="tiny", seed=0)
    Trainer(model, TrainConfig(epochs=6, batch_size=64, max_lr=0.08, seed=0)).fit(x, ytr)
    slaf = slafify(model, x, ytr, degree=3, epochs=2, seed=0)
    layers = compile_model(slaf)
    backend = MockBackend(batch=8, levels=model_depth(layers) + 1)
    images = xv[:4]

    OUT.mkdir(exist_ok=True)
    log_path = OUT / "requests.log.jsonl"
    log_path.unlink(missing_ok=True)  # the logger appends
    obs.get_logger().configure(log_path)

    print("== 2. cloud service up: /metrics + /healthz on an ephemeral port ==")
    service = CloudService(backend, layers, (1, 12, 12))
    client = Client(backend, (1, 12, 12))
    server = service.start_observability(port=0)
    print(f"   scrape endpoints: {server.url}/metrics  {server.url}/healthz")

    print("== 3. traced encrypted classification through the protocol ==")
    with obs.tracing() as tracer:
        enc = client.encrypt_request(images)
        response = service.try_classify(enc)
        assert response.ok
        logits = client.decrypt_response(response.scores, images.shape[0])
    print(f"   predictions: {logits.argmax(1).tolist()}  (true: {yte[:4].tolist()})")

    print("== 4. decrypt-side precision probe vs the plaintext model ==")
    reference = Trainer(slaf).predict(images)
    out = service.engine.run_encrypted(client.encrypt_request(images))
    stats = obs.precision_probe(backend, out, reference, labels={"stage": "logits"})
    print(f"   max |dec - ref| = {stats['max_abs']:.3e}  "
          f"(~{stats['bits_precision']:.1f} bits of precision)")

    print("== 5. ciphertext health at the layer boundaries ==")
    reg = obs.get_registry()
    floor = reg.gauge("henn.ct.noise_margin_bits").to_dict()
    print(f"   noise margin floor: {floor['min']:.1f} bits "
          f"(start {floor['max']:.1f}); level floor: "
          f"{reg.gauge('henn.ct.level').to_dict()['min']:.0f}")

    print("== 6. scrape the live endpoints ==")
    with urllib.request.urlopen(server.url + "/metrics", timeout=5) as resp:
        prom_text = resp.read().decode()
    with urllib.request.urlopen(server.url + "/healthz", timeout=5) as resp:
        health = json.loads(resp.read().decode())
    print(f"   /healthz: {health}")
    for line in prom_text.splitlines():
        if line.startswith(("repro_henn_requests_total", "repro_henn_ct_level ")):
            print(f"   {line}")

    print("== 7. dump artifacts ==")
    (OUT / "metrics.prom").write_text(prom_text)
    obs.dump_json(OUT / "trace.json", tracer, reg)
    obs.dump_chrome_trace(OUT / "chrome_trace.json", tracer)
    (OUT / "report.txt").write_text(obs.render_report(tracer, reg))
    service.stop_observability()
    obs.get_logger().configure(None)
    for rec in [json.loads(l) for l in log_path.read_text().splitlines()]:
        print(f"   log: {rec['event']}  "
              f"{({k: v for k, v in rec.items() if k in ('request', 'seconds', 'scores')})}")
    print(f"   artifacts in {OUT}/: metrics.prom, trace.json, "
          f"chrome_trace.json, report.txt, requests.log.jsonl")


if __name__ == "__main__":
    main()
