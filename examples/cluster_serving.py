"""Cluster serving: a worker pool that survives a SIGKILL mid-traffic.

The gateway from ``batched_serving.py`` grown into a
:class:`~repro.henn.protocol.ClusteredCloudService`: coalesced batches
are dispatched across three process-backed engine workers (each warmed
against the shared-memory plan cache), picked by health-weighted load
balancing.  Mid-run a seeded
:class:`~repro.resilience.FaultInjector` SIGKILLs one worker exactly
as it starts a batch — the orphaned batch fails over to a survivor,
the dead worker respawns and re-warms in the background, and **every
client still gets the same answer the serial service gives**: zero
dropped futures, zero error responses, all count-verified at the end.

Run:  python examples/cluster_serving.py
"""

import threading
import time

from repro.data import load_synth_mnist, normalize_unit, to_nchw
from repro.henn import MockBackend, build_cnn1, compile_model, slafify
from repro.henn.compiler import model_depth
from repro.henn.protocol import Client, CloudService, ClusteredCloudService
from repro.obs.metrics import get_registry
from repro.resilience import FaultInjector

WORKERS = 3
CLIENTS = 8
REQUESTS_EACH = 5
KILL_WORKER = 1
SHAPE = (1, 12, 12)


def main() -> None:
    print("== 1. train + compile CNN1 (SLAF activations, BN folded) ==")
    xtr, ytr, xte, yte = load_synth_mnist(n_train=4000, n_test=500, seed=1, image_size=12)
    x, xv = to_nchw(normalize_unit(xtr)), to_nchw(normalize_unit(xte))
    from repro.nn import TrainConfig, Trainer

    model = build_cnn1(variant="tiny", seed=0)
    Trainer(model, TrainConfig(epochs=6, batch_size=64, max_lr=0.08, seed=0)).fit(x, ytr)
    layers = compile_model(slafify(model, x, ytr, degree=3, epochs=2, seed=0))
    backend = MockBackend(batch=64, levels=model_depth(layers) + 1)
    client = Client(backend, SHAPE)

    print("== 2. serial baseline (the answers the cluster must reproduce) ==")
    serial = CloudService(backend, layers, SHAPE)
    predictions = []
    for c in range(CLIENTS):
        response = serial.try_classify(client.encrypt_request(xv[c : c + 1]))
        assert response.ok
        predictions.append(int(client.decrypt_response(response.scores, 1).argmax()))
    print(f"   predictions {predictions} (true {yte[:CLIENTS].tolist()})")

    print(f"== 3. pool up: {WORKERS} workers, kill of worker {KILL_WORKER} armed ==")
    injector = FaultInjector(seed=7).kill_cluster_worker(worker=KILL_WORKER, on_batch=1)
    t0 = time.perf_counter()
    gateway = ClusteredCloudService(
        backend,
        layers,
        SHAPE,
        workers=WORKERS,
        max_batch_slots=16,
        max_wait_ms=5.0,
        max_queue_depth=64,
        fault_injector=injector,
    )
    health = gateway._health()["cluster"]
    print(
        f"   {health['ready']}/{health['size']} workers ready "
        f"in {time.perf_counter() - t0:.2f} s "
        f"(plan shared via shm: {health['shared_cache']})"
    )

    print(f"== 4. {CLIENTS} concurrent clients x {REQUESTS_EACH} requests, SIGKILL mid-run ==")
    results = [[None] * REQUESTS_EACH for _ in range(CLIENTS)]

    def client_loop(c: int) -> None:
        for r in range(REQUESTS_EACH):
            logits = client.classify_with_retry(
                gateway, xv[c : c + 1], max_attempts=5, backoff_seconds=0.01, seed=c
            )
            results[c][r] = int(logits.argmax())

    threads = [threading.Thread(target=client_loop, args=(c,)) for c in range(CLIENTS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    print("== 5. what the pool survived ==")
    # Give the background respawn a moment to report ready again.
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline and gateway.pool.stats()["ready"] < WORKERS:
        time.sleep(0.05)
    pool = gateway.pool.stats()
    failovers = get_registry().counter("cluster.failovers").value
    print(
        f"   kills fired: {injector.summary().get('cluster.kill', 0)}, "
        f"deaths observed: {pool['deaths']}, failovers: {failovers}, "
        f"respawns: {pool['respawns']}, ready again: {pool['ready']}/{pool['size']}"
    )
    for worker in pool["workers"]:
        print(
            f"   worker {worker['index']}: state={worker['state']} "
            f"generation={worker['generation']} batches={worker['batches']} "
            f"health={worker['health']:.2f}"
        )
    assert pool["deaths"] == 1 and pool["respawns"] == 1
    assert not gateway.dispatcher.degraded, "failover should absorb one death"

    print("== 6. uninterrupted answers: cluster == serial, request by request ==")
    for c in range(CLIENTS):
        assert all(p == predictions[c] for p in results[c]), f"client {c} diverged"
    print(
        f"   all {CLIENTS * REQUESTS_EACH} predictions match the serial baseline "
        "despite the mid-run worker kill"
    )
    gateway.close()


if __name__ == "__main__":
    main()
